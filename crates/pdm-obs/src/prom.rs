//! Prometheus text exposition (format 0.0.4): renderer and lint parser.
//!
//! [`render`] turns a [`MetricRegistry`] into the plain-text format every
//! Prometheus-compatible scraper understands: `# HELP` / `# TYPE` headers
//! per family, cumulative `_bucket{le="…"}` series plus `_sum`/`_count` for
//! histograms.  Logical metric names are dotted (`shard.quote.wall_nanos`);
//! the renderer maps them onto the exposition charset with a `pdm_` prefix
//! and `_` separators.
//!
//! [`parse`] is the matching lint: it re-parses a rendered exposition and
//! checks the structural invariants (name charset, numeric samples, one
//! TYPE per family, cumulative non-decreasing buckets ending in a `+Inf`
//! bucket that equals `_count`).  CI runs it over the scrape every bench
//! workload writes, so a malformed exposition fails the build rather than
//! the first real scraper pointed at it.

use crate::registry::MetricRegistry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps a dotted logical name onto the Prometheus charset:
/// `shard.quote.wall_nanos` → `pdm_shard_quote_wall_nanos`.
#[must_use]
pub fn exposition_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("pdm_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a registry in text exposition format 0.0.4.  Families are
/// sorted by name; histogram buckets are cumulative, collapse duplicate
/// integer edges at the low end of the grid, stop at the last non-empty
/// bucket, and always end with the mandatory `+Inf` bucket.
#[must_use]
pub fn render(registry: &MetricRegistry) -> String {
    // fmt::Write to a String cannot fail; the results are discarded, not
    // unwrapped, to keep the no-unwrap-in-lib surface at zero.
    let mut out = String::new();
    for (name, help, value) in registry.sorted_counters() {
        let prom = exposition_name(name);
        let _ = writeln!(out, "# HELP {prom} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {}", fmt_value(value));
    }
    for (name, help, value) in registry.sorted_gauges() {
        let prom = exposition_name(name);
        let _ = writeln!(out, "# HELP {prom} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {prom} gauge");
        let _ = writeln!(out, "{prom} {}", fmt_value(value));
    }
    for (name, help, hist) in registry.sorted_histograms() {
        let prom = exposition_name(name);
        let _ = writeln!(out, "# HELP {prom} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {prom} histogram");
        // Cumulative counts over the non-empty prefix of the grid, with
        // duplicate integer edges collapsed (the sub-unity part of the
        // base-2^(1/4) grid repeats edges 1 and 2).
        let mut cumulative = 0u64;
        let mut last_edge: Option<u64> = None;
        for (edge, count) in hist.nonzero_buckets() {
            if let Some(previous) = last_edge {
                if previous != edge {
                    let _ = writeln!(out, "{prom}_bucket{{le=\"{previous}\"}} {cumulative}");
                }
            }
            cumulative += count;
            last_edge = Some(edge);
        }
        if let Some(previous) = last_edge {
            if previous != u64::MAX {
                let _ = writeln!(out, "{prom}_bucket{{le=\"{previous}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{prom}_sum {}", fmt_value(hist.sum_f64()));
        let _ = writeln!(out, "{prom}_count {}", hist.count());
    }
    out
}

fn fmt_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_owned()
    } else if value == f64::INFINITY {
        "+Inf".to_owned()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{value}")
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full series name, including `_bucket`/`_sum`/`_count` suffixes.
    pub name: String,
    /// The `le` label for bucket series, verbatim.
    pub le: Option<String>,
    /// The sample value.
    pub value: f64,
}

/// Summary of a successfully linted exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Metric families seen (`# TYPE` headers).
    pub families: usize,
    /// Sample lines seen.
    pub samples: usize,
}

/// Parses and lints a text exposition, returning a summary or the first
/// structural violation.  Accepts the subset of format 0.0.4 that
/// [`render`] emits (at most one label, `le`), which is exactly what the
/// CI lint needs.
pub fn parse(text: &str) -> Result<LintReport, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            match keyword {
                "HELP" => {
                    parts
                        .next()
                        .filter(|name| is_valid_name(name))
                        .ok_or(format!("line {line_no}: HELP without a valid name"))?;
                }
                "TYPE" => {
                    let name = parts
                        .next()
                        .filter(|name| is_valid_name(name))
                        .ok_or(format!("line {line_no}: TYPE without a valid name"))?;
                    let kind = parts
                        .next()
                        .ok_or(format!("line {line_no}: TYPE without a kind"))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {line_no}: unknown TYPE kind {kind}"));
                    }
                    if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                        return Err(format!("line {line_no}: duplicate TYPE for {name}"));
                    }
                }
                _ => return Err(format!("line {line_no}: unknown comment keyword {keyword}")),
            }
            continue;
        }
        samples.push(parse_sample(line, line_no)?);
    }

    // Histogram invariants: cumulative non-decreasing buckets, a final
    // +Inf bucket, and _count equal to it.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let bucket_series = format!("{family}_bucket");
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|sample| sample.name == bucket_series)
            .collect();
        let Some(last) = buckets.last() else {
            return Err(format!("histogram {family} has no _bucket series"));
        };
        let mut previous_le = f64::NEG_INFINITY;
        let mut previous_count = 0.0f64;
        for bucket in &buckets {
            let le_raw = bucket
                .le
                .as_deref()
                .ok_or(format!("histogram {family} bucket without le"))?;
            let le =
                parse_le(le_raw).ok_or(format!("histogram {family} has invalid le {le_raw}"))?;
            if le <= previous_le {
                return Err(format!("histogram {family} le values must increase"));
            }
            if bucket.value < previous_count {
                return Err(format!(
                    "histogram {family} bucket counts must be cumulative"
                ));
            }
            previous_le = le;
            previous_count = bucket.value;
        }
        if last.le.as_deref() != Some("+Inf") {
            return Err(format!("histogram {family} must end with a +Inf bucket"));
        }
        let count = samples
            .iter()
            .find(|sample| sample.name == format!("{family}_count"))
            .ok_or(format!("histogram {family} has no _count"))?;
        samples
            .iter()
            .find(|sample| sample.name == format!("{family}_sum"))
            .ok_or(format!("histogram {family} has no _sum"))?;
        if (count.value - last.value).abs() > 0.0 {
            return Err(format!(
                "histogram {family}: +Inf bucket {} disagrees with _count {}",
                last.value, count.value
            ));
        }
    }

    // Every sample must belong to a declared family.
    for sample in &samples {
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| sample.name.strip_suffix(suffix))
            .filter(|family| types.get(*family).map(String::as_str) == Some("histogram"))
            .unwrap_or(&sample.name);
        if !types.contains_key(family) {
            return Err(format!("sample {} has no TYPE header", sample.name));
        }
    }

    Ok(LintReport {
        families: types.len(),
        samples: samples.len(),
    })
}

fn parse_sample(line: &str, line_no: usize) -> Result<Sample, String> {
    let (series, value_text) = line
        .rsplit_once(' ')
        .ok_or(format!("line {line_no}: sample without a value"))?;
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: non-numeric value {other}"))?,
    };
    let (name, le) = match series.split_once('{') {
        None => (series.to_owned(), None),
        Some((name, labels)) => {
            let labels = labels
                .strip_suffix('}')
                .ok_or(format!("line {line_no}: unterminated label set"))?;
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|rest| rest.strip_suffix('"'))
                .ok_or(format!("line {line_no}: only the le label is expected"))?;
            (name.to_owned(), Some(le.to_owned()))
        }
    };
    if !is_valid_name(&name) {
        return Err(format!("line {line_no}: invalid metric name {name}"));
    }
    Ok(Sample { name, le, value })
}

fn parse_le(raw: &str) -> Option<f64> {
    if raw == "+Inf" {
        Some(f64::INFINITY)
    } else {
        raw.parse::<f64>().ok().filter(|le| le.is_finite())
    }
}

fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_registry() -> MetricRegistry {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("quotes_served_total", "Quotes served");
        reg.inc(c, 42.0);
        let g = reg.gauge("queue.depth", "Queued requests across shards");
        reg.set(g, 3.0);
        let span = reg.span("shard.quote", "Posted-price serve segments");
        reg.record_span(span, Duration::from_micros(7), 16);
        reg.record_span(span, Duration::from_micros(3), 4);
        reg
    }

    #[test]
    fn rendered_exposition_passes_its_own_lint() {
        let text = render(&sample_registry());
        let report = parse(&text).expect("rendered exposition must lint clean");
        // counter + gauge + two span halves.
        assert_eq!(report.families, 4);
        assert!(report.samples >= 8);
        assert!(text.contains("# TYPE pdm_quotes_served_total counter"));
        assert!(text.contains("pdm_quotes_served_total 42"));
        assert!(text.contains("# TYPE pdm_shard_quote_wall_nanos histogram"));
        assert!(text.contains("pdm_shard_quote_work_items_count 2"));
        assert!(text.contains("pdm_shard_quote_work_items_sum 20"));
        assert!(text.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn empty_registry_renders_an_empty_but_valid_exposition() {
        let text = render(&MetricRegistry::new());
        assert_eq!(text, "");
        let report = parse(&text).expect("empty exposition is valid");
        assert_eq!(report.families, 0);
        assert_eq!(report.samples, 0);
    }

    #[test]
    fn empty_histogram_still_carries_the_inf_bucket() {
        let mut reg = MetricRegistry::new();
        reg.histogram("never.work_items", "never recorded");
        let text = render(&reg);
        assert!(text.contains("pdm_never_work_items_bucket{le=\"+Inf\"} 0"));
        parse(&text).expect("empty histogram lints clean");
    }

    #[test]
    fn duplicate_low_grid_edges_are_collapsed() {
        let mut reg = MetricRegistry::new();
        let h = reg.histogram("tiny", "sub-unity grid values");
        reg.observe(h, 0);
        reg.observe(h, 1);
        reg.observe(h, 2);
        let text = render(&reg);
        assert_eq!(
            text.matches("le=\"1\"").count(),
            1,
            "edge 1 must render once: {text}"
        );
        parse(&text).expect("collapsed edges lint clean");
    }

    #[test]
    fn lint_rejects_structural_violations() {
        assert!(parse("pdm_orphan 1\n").is_err(), "sample without TYPE");
        assert!(
            parse("# TYPE pdm_x histogram\npdm_x_sum 1\npdm_x_count 1\n").is_err(),
            "histogram without buckets"
        );
        let bad_cumulative = "# TYPE pdm_x histogram\n\
             pdm_x_bucket{le=\"1\"} 5\n\
             pdm_x_bucket{le=\"+Inf\"} 3\n\
             pdm_x_sum 1\npdm_x_count 3\n";
        assert!(parse(bad_cumulative).is_err(), "non-cumulative buckets");
        let bad_count = "# TYPE pdm_x histogram\n\
             pdm_x_bucket{le=\"+Inf\"} 3\n\
             pdm_x_sum 1\npdm_x_count 4\n";
        assert!(parse(bad_count).is_err(), "+Inf disagreeing with _count");
        assert!(parse("# TYPE bad-name counter\n").is_err(), "invalid name");
        assert!(parse("# TYPE pdm_x rainbow\n").is_err(), "unknown kind");
    }

    #[test]
    fn exposition_names_stay_in_charset() {
        assert_eq!(
            exposition_name("shard.quote.wall_nanos"),
            "pdm_shard_quote_wall_nanos"
        );
        assert_eq!(exposition_name("queue.depth"), "pdm_queue_depth");
        assert!(is_valid_name(&exposition_name("weird-name.π")));
    }
}
