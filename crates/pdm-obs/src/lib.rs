//! # pdm-obs
//!
//! The unified observability layer of the `personal-data-pricing` serving
//! stack: a [`MetricRegistry`] of named counters, gauges, and mergeable
//! log-bucket histograms; lightweight span instrumentation for the serving
//! hot path; a bounded [`EventJournal`] for post-mortem dumps; and two
//! expositions — Prometheus text format 0.0.4 ([`prom::render`]) and a
//! deterministic JSON dump ([`MetricRegistry::to_json`]).
//!
//! ## Design constraints, in order
//!
//! 1. **Determinism first.**  The serving engine's contract is that every
//!    computed value is a pure function of the request stream, independent
//!    of worker count.  Histograms therefore live on the fixed
//!    base-2^(1/4) grid of [`pdm_linalg::logbucket`], where merging is an
//!    exact integer fold; wall-clock timings are segregated behind a
//!    per-entry flag and never enter the deterministic dump.
//! 2. **Hot-path cheap.**  Recording is a `Vec` index away from a handle;
//!    spans are recorded per *batch* (a drain, a same-tenant segment), not
//!    per request, so the ~60 ns/quote fused path pays a pair of clock
//!    reads per segment, not per quote.
//! 3. **No locks here.**  A registry is a plain value; the embedder owns
//!    placement (per-shard, behind the shard's existing lock) and folds
//!    registries at scrape time with [`MetricRegistry::merge`].
//!
//! ## Quick example
//!
//! ```
//! use pdm_obs::MetricRegistry;
//! use std::time::Duration;
//!
//! let mut reg = MetricRegistry::new();
//! let served = reg.counter("quotes_served_total", "Quotes served");
//! let quote = reg.span("shard.quote", "Posted-price serve segments");
//! // ... per batch, on the hot path:
//! reg.inc(served, 32.0);
//! reg.record_span(quote, Duration::from_micros(7), 32);
//! // ... at scrape time:
//! let text = reg.render_prometheus();
//! assert!(text.contains("pdm_quotes_served_total 32"));
//! pdm_obs::prom::parse(&text).expect("valid exposition");
//! let deterministic = reg.to_json(true).render();
//! assert!(!deterministic.contains("wall_nanos"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod journal;
pub mod prom;
pub mod registry;

pub use hist::LogHistogram;
pub use journal::{Event, EventJournal};
pub use registry::{CounterId, GaugeId, HistId, MetricRegistry, SpanId};

/// Times an expression and records it as one span batch.
///
/// ```
/// use pdm_obs::{span, MetricRegistry};
///
/// let mut reg = MetricRegistry::new();
/// let checkpoint = reg.span("wal.checkpoint", "WAL checkpoint writes");
/// let captured = span!(reg, checkpoint, 3, { 1 + 2 });
/// assert_eq!(captured, 3);
/// assert_eq!(
///     reg.histogram_counts("wal.checkpoint.work_items").unwrap().count(),
///     1
/// );
/// ```
#[macro_export]
macro_rules! span {
    ($registry:expr, $span:expr, $work:expr, $body:expr) => {{
        let __span_started = ::std::time::Instant::now();
        let __span_result = $body;
        $registry.record_span($span, __span_started.elapsed(), $work);
        __span_result
    }};
}
