//! Property tests for the clearing rule under degenerate inputs.
//!
//! The load-bearing invariants: a single-bidder auction degenerates to a
//! posted price at the reserve, a reserve above every bid is always a
//! no-sale with zero revenue, and on any sale the price is sandwiched by
//! `max(second bid, reserve) = price ≤ top bid` so welfare dominates
//! revenue.

use pdm_auction::{clear_second_price, run_auction_round, ReserveSetter, StaticReserve};
use pdm_linalg::Vector;
use proptest::prelude::*;

fn finite_bid() -> impl Strategy<Value = f64> {
    0.0..1e6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One bidder: the auction is exactly a posted price at the reserve —
    /// the bidder buys iff their bid clears it, and pays the reserve
    /// itself, never their bid.
    #[test]
    fn single_bidder_degenerates_to_posted_price(
        bid in finite_bid(),
        reserve in finite_bid(),
    ) {
        let result = clear_second_price(&[bid], reserve);
        if bid >= reserve {
            prop_assert_eq!(result.winner, Some(0));
            prop_assert_eq!(result.price, reserve);
            prop_assert!(result.reserve_hit);
        } else {
            prop_assert!(!result.sold());
            prop_assert_eq!(result.revenue(), 0.0);
        }
    }

    /// A reserve strictly above every bid never sells, earns nothing, and
    /// allocates nothing — for any bidder count.
    #[test]
    fn reserve_above_all_bids_is_a_no_sale(
        bids in prop::collection::vec(finite_bid(), 0..12),
    ) {
        let top = bids.iter().copied().fold(0.0_f64, f64::max);
        let result = clear_second_price(&bids, top + 1.0);
        prop_assert!(!result.sold());
        prop_assert_eq!(result.winner, None);
        prop_assert_eq!(result.revenue(), 0.0);
        prop_assert_eq!(result.welfare(), 0.0);
    }

    /// On any sale: the winner really holds the top bid, the price is
    /// `max(second, reserve)`, and revenue never exceeds welfare.
    #[test]
    fn sale_prices_are_sandwiched(
        bids in prop::collection::vec(finite_bid(), 1..12),
        reserve in finite_bid(),
    ) {
        let result = clear_second_price(&bids, reserve);
        if let Some(winner) = result.winner {
            prop_assert_eq!(result.top_bid, bids[winner]);
            prop_assert!(bids.iter().all(|&b| b <= result.top_bid));
            prop_assert!(result.price <= result.top_bid);
            prop_assert!(result.price >= reserve.min(result.top_bid));
            let expected = if result.second_bid > reserve {
                result.second_bid
            } else {
                reserve
            };
            prop_assert_eq!(result.price, expected);
            prop_assert!(result.welfare() >= result.revenue());
        } else {
            prop_assert!(result.top_bid < reserve || bids.is_empty());
        }
    }

    /// The shared round path clamps every policy at the floor: whatever a
    /// setter answers, the cleared reserve honours the constraint.
    #[test]
    fn round_path_clamps_the_reserve_at_the_floor(
        floor in finite_bid(),
        markup in 0.0..10.0_f64,
        bids in prop::collection::vec(finite_bid(), 1..6),
    ) {
        let mut policy = StaticReserve::new(markup);
        let features = Vector::from_slice(&[1.0]);
        let cleared = run_auction_round(&mut policy, &features, floor, &bids);
        prop_assert!(cleared.reserve >= floor);
        prop_assert_eq!(cleared.reserve, policy.reserve(&features, floor).max(floor));
        if cleared.result.sold() {
            prop_assert!(cleared.result.price >= floor);
        }
    }
}
