//! Eager second-price clearing with a personalized reserve.
//!
//! One call to [`clear_second_price`] settles one round: the highest bidder
//! wins if and only if their bid meets the reserve, and pays the larger of
//! the second-highest bid and the reserve (the "eager" rule of the
//! personalized-reserve literature — the reserve filters *and* prices, it
//! never re-ranks).  The function is the hot path of the auction layer, so
//! it is deliberately allocation-free and **sort-free**: a single pass
//! tracks the top two bids, which is all second-price settlement needs.
//!
//! Degenerate inputs settle, they do not panic:
//!
//! * no bidders — a no-sale;
//! * a single bidder — the auction degenerates to a posted price at the
//!   reserve (the winner pays exactly the reserve when they clear it);
//! * a reserve above every bid — a no-sale with zero revenue.

/// The settlement of one auction round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuctionResult {
    /// Index (into the bid slice) of the winning bidder; `None` on a
    /// no-sale.  Ties go to the earliest index, deterministically.
    pub winner: Option<usize>,
    /// What the winner pays: `max(second bid, reserve)` on a sale, `0.0`
    /// otherwise.
    pub price: f64,
    /// The highest submitted bid (`-inf` when there were no bidders).
    pub top_bid: f64,
    /// The second-highest submitted bid (`-inf` with fewer than two
    /// bidders).
    pub second_bid: f64,
    /// Whether the reserve set the price, i.e. the sale cleared with the
    /// second bid below the reserve.  The mean of this flag over sold
    /// rounds is the **reserve hit-rate** the service reports per shard.
    pub reserve_hit: bool,
}

impl AuctionResult {
    /// Whether the round sold.
    #[must_use]
    pub fn sold(&self) -> bool {
        self.winner.is_some()
    }

    /// Revenue of the round: the clearing price on a sale, zero otherwise.
    #[must_use]
    pub fn revenue(&self) -> f64 {
        if self.sold() {
            self.price
        } else {
            0.0
        }
    }

    /// Allocative welfare of the round: the winner's bid (their valuation,
    /// under truthful second-price bidding) on a sale, zero otherwise.
    /// Always at least [`AuctionResult::revenue`].
    #[must_use]
    pub fn welfare(&self) -> f64 {
        if self.sold() {
            self.top_bid
        } else {
            0.0
        }
    }

    /// The top bid when at least one bid was submitted.
    #[must_use]
    pub fn top_bid_opt(&self) -> Option<f64> {
        self.top_bid.is_finite().then_some(self.top_bid)
    }

    /// The second bid when at least two bids were submitted.
    #[must_use]
    pub fn second_bid_opt(&self) -> Option<f64> {
        self.second_bid.is_finite().then_some(self.second_bid)
    }
}

/// Settles an eager second-price auction with the given reserve.
///
/// Single allocation-free pass; ties on the top bid resolve to the earliest
/// index so settlement is deterministic for any bid ordering the caller
/// fixes.  Non-finite bids are treated as absent (a NaN bid can never win
/// or set the price).
#[must_use]
pub fn clear_second_price(bids: &[f64], reserve: f64) -> AuctionResult {
    let mut top = f64::NEG_INFINITY;
    let mut second = f64::NEG_INFINITY;
    let mut winner: Option<usize> = None;
    for (index, &bid) in bids.iter().enumerate() {
        if !bid.is_finite() {
            continue;
        }
        if bid > top {
            second = top;
            top = bid;
            winner = Some(index);
        } else if bid > second {
            second = bid;
        }
    }
    let sold = winner.is_some() && top >= reserve;
    if !sold {
        return AuctionResult {
            winner: None,
            price: 0.0,
            top_bid: top,
            second_bid: second,
            reserve_hit: false,
        };
    }
    let reserve_hit = second < reserve;
    AuctionResult {
        winner,
        price: if reserve_hit { reserve } else { second },
        top_bid: top,
        second_bid: second,
        reserve_hit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_bid_prices_when_above_the_reserve() {
        let result = clear_second_price(&[0.4, 1.0, 0.7], 0.5);
        assert_eq!(result.winner, Some(1));
        assert_eq!(result.price, 0.7);
        assert!(!result.reserve_hit);
        assert_eq!(result.top_bid, 1.0);
        assert_eq!(result.second_bid, 0.7);
        assert_eq!(result.revenue(), 0.7);
        assert_eq!(result.welfare(), 1.0);
    }

    #[test]
    fn reserve_prices_when_it_exceeds_the_second_bid() {
        let result = clear_second_price(&[0.2, 1.0, 0.3], 0.6);
        assert_eq!(result.winner, Some(1));
        assert_eq!(result.price, 0.6);
        assert!(result.reserve_hit);
    }

    #[test]
    fn reserve_above_every_bid_is_a_no_sale() {
        let result = clear_second_price(&[0.2, 1.0, 0.3], 1.5);
        assert_eq!(result.winner, None);
        assert!(!result.sold());
        assert_eq!(result.revenue(), 0.0);
        assert_eq!(result.welfare(), 0.0);
        // The bids were still observed (they feed the empirical setter).
        assert_eq!(result.top_bid_opt(), Some(1.0));
        assert_eq!(result.second_bid_opt(), Some(0.3));
    }

    #[test]
    fn single_bidder_degenerates_to_a_posted_price_at_the_reserve() {
        let sold = clear_second_price(&[0.8], 0.5);
        assert_eq!(sold.winner, Some(0));
        assert_eq!(sold.price, 0.5, "one bidder pays exactly the reserve");
        assert!(sold.reserve_hit);
        assert_eq!(sold.second_bid_opt(), None);

        let unsold = clear_second_price(&[0.4], 0.5);
        assert!(!unsold.sold());
    }

    #[test]
    fn no_bidders_is_a_no_sale() {
        let result = clear_second_price(&[], 0.0);
        assert!(!result.sold());
        assert_eq!(result.top_bid_opt(), None);
    }

    #[test]
    fn ties_resolve_to_the_earliest_index() {
        let result = clear_second_price(&[0.9, 0.9, 0.9], 0.1);
        assert_eq!(result.winner, Some(0));
        assert_eq!(result.price, 0.9);
    }

    #[test]
    fn non_finite_bids_are_ignored() {
        let result = clear_second_price(&[f64::NAN, 0.7, f64::INFINITY, 0.4], 0.1);
        assert_eq!(result.winner, Some(1));
        assert_eq!(result.price, 0.4);
    }

    #[test]
    fn exact_reserve_tie_still_sells() {
        let result = clear_second_price(&[0.5], 0.5);
        assert!(result.sold());
        assert_eq!(result.price, 0.5);
    }
}
