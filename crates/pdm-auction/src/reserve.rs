//! The non-session reserve policies of the grid: static, and the empirical
//! data-driven setter.
//!
//! The trait itself ([`ReserveSetter`]) and the bridge that turns a
//! [`pdm_pricing::session::PricingSession`] into a learned policy live in
//! `pdm_pricing::reserve`; this module adds the two policies that need no
//! pricing mechanism:
//!
//! * [`StaticReserve`] — a fixed mark-up over the round's floor.  With a
//!   zero mark-up this is the pure reserve-price-constraint auction (the
//!   seller never asks for more than the privacy compensation), the natural
//!   baseline the learned policies must beat.
//! * [`EmpiricalReserve`] — the data-driven policy in the spirit of the
//!   LP-based approximation of Derakhshan–Golrezaei–Paes Leme: among the
//!   candidate reserves that matter (the historical top bids, which are the
//!   only points where the clearing outcome changes), pick the one that
//!   maximises the empirical objective over a sliding window of observed
//!   rounds.  The objective is revenue, optionally blended with welfare.

use crate::auction::clear_second_price;
use pdm_pricing::reserve::{ReserveFeedback, ReserveSetter};
use std::collections::VecDeque;

pub use pdm_pricing::reserve::{ReserveFeedback as Feedback, ReserveSetter as Setter};

/// A fixed mark-up over the round's floor: `reserve = floor + markup`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticReserve {
    markup: f64,
}

impl StaticReserve {
    /// A static policy adding `markup` (clamped at 0) to every floor.
    #[must_use]
    pub fn new(markup: f64) -> Self {
        Self {
            markup: markup.max(0.0),
        }
    }

    /// The pure reserve-constraint policy: quote exactly the floor.
    #[must_use]
    pub fn at_floor() -> Self {
        Self::new(0.0)
    }

    /// The configured mark-up.
    #[must_use]
    pub fn markup(&self) -> f64 {
        self.markup
    }
}

impl ReserveSetter for StaticReserve {
    fn name(&self) -> String {
        if self.markup == 0.0 {
            "static reserve (floor)".to_owned()
        } else {
            format!("static reserve (floor + {})", self.markup)
        }
    }

    fn reserve(&mut self, _features: &pdm_linalg::Vector, floor: f64) -> f64 {
        floor + self.markup
    }

    fn observe(&mut self, _feedback: ReserveFeedback) {}
}

/// Configuration of the [`EmpiricalReserve`] policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalConfig {
    /// Sliding window of observed `(top, second)` bid pairs the grid search
    /// runs over; memory and refit cost are `O(window)` and `O(window²)`.
    pub window: usize,
    /// Weight of the welfare term in the objective: a candidate reserve `r`
    /// scores `Σ 1[top ≥ r]·(max(second, r) + welfare_weight · top)` over
    /// the window.  Zero (the default) is the pure revenue objective; a
    /// positive weight trades reserve aggressiveness for allocation.
    pub welfare_weight: f64,
}

impl Default for EmpiricalConfig {
    fn default() -> Self {
        Self {
            window: 64,
            welfare_weight: 0.0,
        }
    }
}

/// The empirical data-driven reserve: a grid search over historical top
/// bids, refit after every observed round.
///
/// The policy is feature-blind *within* a tenant — its personalisation is
/// per market (one setter per tenant/owner, each converging to its own bid
/// landscape), which is the unit the personalized-reserve literature
/// optimises.  It needs uncensored feedback to learn: rounds whose
/// [`ReserveFeedback::top_bid`] is `None` update nothing (the quoted
/// reserve still applies).
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalReserve {
    config: EmpiricalConfig,
    /// Observed `(top, second)` pairs, oldest first; `second` is 0 for
    /// single-bidder rounds (bidding below zero is dominated).
    history: VecDeque<(f64, f64)>,
    /// The current fitted mark-up over the floor (0 until the first refit).
    fitted: f64,
}

impl EmpiricalReserve {
    /// A fresh policy with the given configuration.
    ///
    /// # Panics
    /// Panics when the window is zero.
    #[must_use]
    pub fn new(config: EmpiricalConfig) -> Self {
        assert!(config.window > 0, "empirical window must be positive");
        Self {
            config,
            history: VecDeque::with_capacity(config.window),
            fitted: 0.0,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> EmpiricalConfig {
        self.config
    }

    /// The currently fitted reserve level (before the per-round floor
    /// clamp).
    #[must_use]
    pub fn fitted(&self) -> f64 {
        self.fitted
    }

    /// The retained `(top, second)` history, oldest first — the snapshot
    /// writer's view of the learned state.
    pub fn history(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.history.iter().copied()
    }

    /// Rebuilds a policy from persisted parts (the snapshot-restore path).
    /// History beyond the window keeps only the most recent entries; the
    /// fitted level is re-derived from the history rather than trusted, so
    /// a restored policy always agrees with its own refit.
    #[must_use]
    pub fn from_history(config: EmpiricalConfig, history: &[(f64, f64)]) -> Self {
        let mut policy = Self::new(config);
        let start = history.len().saturating_sub(config.window);
        policy.history.extend(history[start..].iter().copied());
        policy.refit();
        policy
    }

    /// Empirical objective of a candidate reserve over the window.
    fn score(&self, candidate: f64) -> f64 {
        let mut total = 0.0;
        for &(top, second) in &self.history {
            let cleared = clear_second_price(&[top, second], candidate);
            total += cleared.revenue() + self.config.welfare_weight * cleared.welfare();
        }
        total
    }

    /// Grid search over the candidate set: 0 (never bind above the floor)
    /// plus every retained top bid.  Ties pick the **lowest** reserve, so
    /// the policy never binds without empirical evidence that binding pays.
    fn refit(&mut self) {
        let mut best_reserve = 0.0;
        let mut best_score = self.score(0.0);
        for index in 0..self.history.len() {
            let candidate = self.history[index].0;
            let score = self.score(candidate);
            if score > best_score || (score == best_score && candidate < best_reserve) {
                best_score = score;
                best_reserve = candidate;
            }
        }
        self.fitted = best_reserve;
    }
}

impl ReserveSetter for EmpiricalReserve {
    fn name(&self) -> String {
        format!("empirical reserve (window {})", self.config.window)
    }

    fn reserve(&mut self, _features: &pdm_linalg::Vector, floor: f64) -> f64 {
        self.fitted.max(floor)
    }

    fn observe(&mut self, feedback: ReserveFeedback) {
        let Some(top) = feedback.top_bid else {
            return; // censored round: nothing to learn from
        };
        let second = feedback.second_bid.unwrap_or(0.0).max(0.0);
        if self.history.len() == self.config.window {
            self.history.pop_front();
        }
        self.history.push_back((top, second));
        self.refit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::Vector;

    fn x() -> Vector {
        Vector::from_slice(&[1.0])
    }

    fn observe_pair(policy: &mut EmpiricalReserve, top: f64, second: f64) {
        policy.observe(ReserveFeedback {
            sold: true,
            reserve: 0.0,
            top_bid: Some(top),
            second_bid: Some(second),
        });
    }

    #[test]
    fn static_reserve_is_the_floor_plus_markup() {
        let mut floor_only = StaticReserve::at_floor();
        assert_eq!(floor_only.reserve(&x(), 0.7), 0.7);
        assert_eq!(floor_only.markup(), 0.0);
        let mut marked_up = StaticReserve::new(0.3);
        assert_eq!(marked_up.reserve(&x(), 0.7), 1.0);
        assert!(StaticReserve::new(-1.0).markup() == 0.0);
        assert!(floor_only.name().contains("floor"));
        // Feedback is a no-op.
        floor_only.observe(ReserveFeedback::censored(true, 0.7));
        assert_eq!(floor_only.reserve(&x(), 0.7), 0.7);
    }

    #[test]
    fn empirical_reserve_starts_at_the_floor() {
        let mut policy = EmpiricalReserve::new(EmpiricalConfig::default());
        assert_eq!(policy.reserve(&x(), 0.4), 0.4);
        assert_eq!(policy.fitted(), 0.0);
    }

    #[test]
    fn empirical_reserve_learns_to_bind_when_binding_pays() {
        // Top bids near 1.0, second bids near 0.1: an unreserved auction
        // earns ~0.1/round, a reserve just under the top bids earns ~0.9.
        let mut policy = EmpiricalReserve::new(EmpiricalConfig::default());
        for i in 0..32 {
            observe_pair(&mut policy, 0.9 + 0.001 * f64::from(i), 0.1);
        }
        let fitted = policy.fitted();
        assert!(
            (0.9..=0.95).contains(&fitted),
            "fitted reserve {fitted} should sit at the bottom of the top-bid cluster"
        );
        // The fitted level dominates the floor when it is higher...
        assert_eq!(policy.reserve(&x(), 0.2), fitted);
        // ...and the floor wins when the constraint binds harder.
        assert_eq!(policy.reserve(&x(), 2.0), 2.0);
    }

    #[test]
    fn empirical_reserve_stays_at_zero_when_second_bids_carry_the_revenue() {
        // Second bids equal top bids: no reserve can earn more than the
        // second-price baseline, so the tie-break keeps the policy unbound.
        let mut policy = EmpiricalReserve::new(EmpiricalConfig::default());
        for i in 0..16 {
            let bid = 0.5 + 0.01 * f64::from(i);
            observe_pair(&mut policy, bid, bid);
        }
        assert_eq!(policy.fitted(), 0.0);
    }

    #[test]
    fn welfare_weight_softens_the_reserve() {
        let fit = |welfare_weight: f64| {
            let mut policy = EmpiricalReserve::new(EmpiricalConfig {
                window: 64,
                welfare_weight,
            });
            // A mixed landscape: half the rounds have a weak top bid that a
            // binding reserve would turn into a no-sale.
            for i in 0..16 {
                observe_pair(&mut policy, 1.0 + 0.002 * f64::from(i), 0.1);
                observe_pair(&mut policy, 0.4 + 0.002 * f64::from(i), 0.1);
            }
            policy.fitted()
        };
        let aggressive = fit(0.0);
        let softened = fit(5.0);
        assert!(
            aggressive >= 1.0,
            "revenue-only fit should bind at the strong cluster ({aggressive})"
        );
        assert!(
            softened < 0.5,
            "the welfare term must retreat to a reserve that loses no sale \
             (revenue-only {aggressive}, blended {softened})"
        );
    }

    #[test]
    fn window_is_bounded_and_censored_rounds_teach_nothing() {
        let mut policy = EmpiricalReserve::new(EmpiricalConfig {
            window: 4,
            welfare_weight: 0.0,
        });
        for _ in 0..10 {
            observe_pair(&mut policy, 1.0, 0.2);
        }
        assert_eq!(policy.history().count(), 4);
        let before = policy.clone();
        policy.observe(ReserveFeedback::censored(false, 0.9));
        assert_eq!(policy, before);
    }

    #[test]
    fn from_history_round_trips_and_truncates() {
        let mut policy = EmpiricalReserve::new(EmpiricalConfig {
            window: 8,
            welfare_weight: 0.0,
        });
        for i in 0..12 {
            observe_pair(&mut policy, 0.8 + 0.01 * f64::from(i), 0.3);
        }
        let saved: Vec<(f64, f64)> = policy.history().collect();
        let restored = EmpiricalReserve::from_history(policy.config(), &saved);
        assert_eq!(restored, policy);
        // Oversized persisted history keeps only the most recent window.
        let mut oversized = vec![(9.0, 8.0); 20];
        oversized.extend_from_slice(&saved);
        let truncated = EmpiricalReserve::from_history(policy.config(), &oversized);
        assert_eq!(truncated, policy);
    }
}
