//! # pdm-auction
//!
//! A multi-bidder **auction market** with learned personalized reserves,
//! built on the pricing mechanism of Niu et al. (ICDE 2020).
//!
//! The paper prices data with a posted price under a reserve-price
//! constraint; the reserve-price literature itself lives in the auction
//! setting — eager second-price auctions where the seller's lever is a
//! **personalized reserve** per item (Paes Leme–Pál–Vassilvitskii, *A Field
//! Guide to Personalized Reserve Prices*; Derakhshan–Golrezaei–Paes Leme,
//! *Data-Driven Optimization of Personalized Reserve Prices*).  This crate
//! opens that scenario axis for the workspace:
//!
//! * [`auction`] — the clearing rule: eager second-price settlement with a
//!   reserve, sort-free and allocation-free (the hot path of the serving
//!   engine's auction tenants).
//! * [`bidders`] — seeded bidder populations over configurable valuation
//!   distributions (uniform band, lognormal, hot-cold segments).
//! * [`reserve`] — the non-session reserve policies: a static floor markup
//!   and the empirical data-driven grid search over historical bids.  The
//!   [`ReserveSetter`] trait itself, and the bridge that turns a
//!   `pdm_pricing::session::PricingSession` into a *learned* policy fed by
//!   censored win/lose-at-reserve feedback, live in `pdm_pricing::reserve`
//!   (re-exported here) so the crate DAG stays acyclic.
//! * [`market`] — the deterministic round generator and
//!   [`run_auction_round`], the single quote→clear→observe path shared by
//!   the serial market loop, the `pdm-service` auction tenants, and the
//!   `bench auction` serial-replay verifier.
//!
//! ## Quickstart
//!
//! ```
//! use pdm_auction::{clear_second_price, ReserveSetter, StaticReserve};
//! use pdm_linalg::Vector;
//!
//! // Three bidders, a reserve at the privacy-compensation floor.
//! let mut policy = StaticReserve::at_floor();
//! let reserve = policy.reserve(&Vector::from_slice(&[0.2, 0.3, 0.5]), 0.45);
//! let result = clear_second_price(&[0.9, 0.4, 0.6], reserve);
//! assert_eq!(result.winner, Some(0));
//! assert_eq!(result.price, 0.6); // the second bid clears the 0.45 reserve
//! assert!(result.welfare() >= result.revenue());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod bidders;
pub mod market;
pub mod reserve;

pub use auction::{clear_second_price, AuctionResult};
pub use bidders::ValuationDistribution;
pub use market::{
    run_auction_round, AuctionLedger, AuctionMarket, AuctionMarketConfig, AuctionRound,
    ClearedRound,
};
pub use pdm_pricing::drift::{DriftKind, DriftSchedule};
pub use pdm_pricing::reserve::{ReserveFeedback, ReserveSetter};
pub use reserve::{EmpiricalConfig, EmpiricalReserve, StaticReserve};
