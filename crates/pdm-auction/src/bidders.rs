//! Bidder populations: who shows up to an auction round and what they bid.
//!
//! A round has a hidden base value `v` (the item's market value under the
//! paper's model `v = θ*·x`); each bidder draws a private valuation around
//! `v` from a [`ValuationDistribution`] and — under standard second-price
//! incentives — bids it truthfully.  Draw order is fixed (bidder 0 first),
//! so a seeded RNG makes every population deterministic, which is what the
//! bench grid's serial-replay verification relies on.

use pdm_linalg::sampling;
use rand::Rng;

/// How bidder valuations scatter around the round's base value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValuationDistribution {
    /// Valuations are `v · U(1 − spread, 1 + spread)` — a symmetric band
    /// around the base value.
    Uniform {
        /// Half-width of the multiplicative band, in `(0, 1)`.
        spread: f64,
    },
    /// Valuations are `v · exp(σZ − σ²/2)` with `Z ~ N(0, 1)` — the
    /// mean-preserving lognormal commonly fitted to bid landscapes.
    LogNormal {
        /// Log-scale standard deviation σ.
        sigma: f64,
    },
    /// A hot segment values the item well above base (e.g. the few buyers a
    /// survey is really about), the cold rest sit below it — the regime
    /// where a good reserve earns far more than the second bid.
    HotCold {
        /// Fraction of bidders in the hot segment, in `(0, 1]`; at least
        /// one bidder is always hot.
        hot_fraction: f64,
        /// Multiplicative boost band of the hot segment: hot valuations are
        /// `v · U(1, 1 + hot_boost)`.
        hot_boost: f64,
        /// Cold valuations are `v · U(cold_level/2, cold_level)`.
        cold_level: f64,
    },
}

impl ValuationDistribution {
    /// Machine-readable name used in grid labels and the BENCH schema.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ValuationDistribution::Uniform { .. } => "uniform",
            ValuationDistribution::LogNormal { .. } => "lognormal",
            ValuationDistribution::HotCold { .. } => "hot-cold",
        }
    }

    /// The defaults the bench grid runs — deliberately **wide** dispersion
    /// (±95 % uniform band, σ = 1.2 lognormal, a 30 % hot segment bidding
    /// up to 2.5× base over a cold crowd at ≤ 0.5× base): the regimes where
    /// personalized reserves genuinely move revenue, validated against the
    /// second-price-no-reserve baseline under thin competition.
    #[must_use]
    pub fn bench_defaults() -> [ValuationDistribution; 3] {
        [
            ValuationDistribution::Uniform { spread: 0.95 },
            ValuationDistribution::LogNormal { sigma: 1.2 },
            ValuationDistribution::HotCold {
                hot_fraction: 0.3,
                hot_boost: 1.5,
                cold_level: 0.5,
            },
        ]
    }

    /// Draws one bidder's valuation around `base_value`.
    ///
    /// `index`/`bidders` locate the bidder inside the population (the
    /// hot-cold split segments by index; the scalar distributions ignore
    /// them).
    fn draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        base_value: f64,
        index: usize,
        bidders: usize,
    ) -> f64 {
        match *self {
            ValuationDistribution::Uniform { spread } => {
                base_value * sampling::uniform(rng, 1.0 - spread, 1.0 + spread)
            }
            ValuationDistribution::LogNormal { sigma } => {
                let z = sampling::standard_normal(rng);
                base_value * (sigma * z - 0.5 * sigma * sigma).exp()
            }
            ValuationDistribution::HotCold {
                hot_fraction,
                hot_boost,
                cold_level,
            } => {
                let hot = ((bidders as f64 * hot_fraction).ceil() as usize).max(1);
                if index < hot {
                    base_value * sampling::uniform(rng, 1.0, 1.0 + hot_boost)
                } else {
                    base_value * sampling::uniform(rng, 0.5 * cold_level, cold_level)
                }
            }
        }
    }

    /// Fills `out` with `bidders` truthful bids around `base_value`,
    /// reusing the buffer (the round loop's no-allocation contract).
    pub fn sample_bids_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        base_value: f64,
        bidders: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(bidders);
        for index in 0..bidders {
            out.push(self.draw(rng, base_value, index, bidders).max(0.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bids(dist: ValuationDistribution, seed: u64, bidders: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        dist.sample_bids_into(&mut rng, 1.0, bidders, &mut out);
        out
    }

    #[test]
    fn names_cover_the_grid() {
        let names: Vec<&str> = ValuationDistribution::bench_defaults()
            .iter()
            .map(ValuationDistribution::name)
            .collect();
        assert_eq!(names, vec!["uniform", "lognormal", "hot-cold"]);
    }

    #[test]
    fn uniform_band_stays_inside_its_bounds() {
        for &bid in &bids(ValuationDistribution::Uniform { spread: 0.4 }, 3, 200) {
            assert!((0.6..=1.4).contains(&bid), "{bid}");
        }
    }

    #[test]
    fn lognormal_is_positive_and_roughly_mean_preserving() {
        let sample = bids(ValuationDistribution::LogNormal { sigma: 0.5 }, 5, 4_000);
        assert!(sample.iter().all(|&b| b > 0.0));
        let mean = sample.iter().sum::<f64>() / sample.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean drifted to {mean}");
    }

    #[test]
    fn hot_cold_segments_by_index() {
        let dist = ValuationDistribution::HotCold {
            hot_fraction: 0.25,
            hot_boost: 1.0,
            cold_level: 0.8,
        };
        let sample = bids(dist, 7, 8);
        // ceil(8 * 0.25) = 2 hot bidders at the front.
        for &hot in &sample[..2] {
            assert!(hot >= 1.0, "{hot}");
        }
        for &cold in &sample[2..] {
            assert!(cold <= 0.8, "{cold}");
        }
        // A single-bidder population is always hot (never empty).
        let solo = bids(dist, 7, 1);
        assert!(solo[0] >= 1.0);
    }

    #[test]
    fn sampling_is_deterministic_and_reuses_the_buffer() {
        let dist = ValuationDistribution::Uniform { spread: 0.2 };
        let a = bids(dist, 11, 16);
        let b = bids(dist, 11, 16);
        assert_eq!(a, b);

        let mut rng = StdRng::seed_from_u64(11);
        let mut buffer = vec![9.9; 64];
        dist.sample_bids_into(&mut rng, 1.0, 16, &mut buffer);
        assert_eq!(buffer.len(), 16);
        assert_eq!(buffer, a);
    }

    #[test]
    fn negative_base_values_clamp_to_zero_bids() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        ValuationDistribution::Uniform { spread: 0.4 }
            .sample_bids_into(&mut rng, -1.0, 8, &mut out);
        assert!(out.iter().all(|&b| b == 0.0));
    }
}
