//! The auction market loop: rounds, the shared round-serving path, and the
//! deterministic ledger.
//!
//! [`run_auction_round`] is the one code path that settles a round against a
//! reserve policy — quote, clear, feed back.  The serving engine
//! (`pdm-service`), the serial replay verifier of `bench auction`, and the
//! self-contained [`AuctionMarket`] loop below all call it, so "sharded
//! equals serial, bit for bit" is a property of shared code, not of two
//! implementations kept in sync by hand.
//!
//! [`AuctionMarket`] is the offline generator: each round draws item
//! features, derives the hidden base value `v = θ*·x`, sets the floor as a
//! fraction of `v` (the privacy-compensation constraint), and draws a
//! seeded bidder population around `v`.  Everything is deterministic in the
//! seed.

use crate::auction::{clear_second_price, AuctionResult};
use crate::bidders::ValuationDistribution;
use pdm_linalg::{sampling, Vector};
use pdm_pricing::drift::{DriftProcess, DriftSchedule};
use pdm_pricing::reserve::{ReserveFeedback, ReserveSetter};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One settled auction round: the quoted reserve plus the clearing result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClearedRound {
    /// The reserve the policy quoted (already floor-clamped).
    pub reserve: f64,
    /// The settlement.
    pub result: AuctionResult,
}

/// Settles one auction round against a reserve policy: quote the reserve,
/// clear the eager second-price auction, report the outcome back.
///
/// The feedback always reveals the observed bids (`top`/`second`) — callers
/// that model a censored exchange should run the policy behind their own
/// feedback filter instead.
pub fn run_auction_round<R: ReserveSetter + ?Sized>(
    setter: &mut R,
    features: &Vector,
    floor: f64,
    bids: &[f64],
) -> ClearedRound {
    let reserve = setter.reserve(features, floor).max(floor);
    let result = clear_second_price(bids, reserve);
    setter.observe(ReserveFeedback {
        sold: result.sold(),
        reserve,
        top_bid: result.top_bid_opt(),
        second_bid: result.second_bid_opt(),
    });
    ClearedRound { reserve, result }
}

/// Deterministic aggregates of a run of auction rounds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AuctionLedger {
    /// Rounds settled.
    pub auctions: u64,
    /// Rounds that sold.
    pub sales: u64,
    /// Sold rounds whose price was set by the reserve (not the second bid).
    pub reserve_hits: u64,
    /// Cumulative clearing revenue.
    pub revenue: f64,
    /// Cumulative allocative welfare (winners' bids).
    pub welfare: f64,
    /// What the same bid streams would have earned under second-price with
    /// **no** reserve (every round sells at the second bid): the baseline
    /// the learned policies are gated against.
    pub baseline_revenue: f64,
}

impl AuctionLedger {
    /// Folds one settled round into the ledger.
    pub fn record(&mut self, round: &ClearedRound) {
        self.auctions += 1;
        if round.result.sold() {
            self.sales += 1;
            if round.result.reserve_hit {
                self.reserve_hits += 1;
            }
        }
        self.revenue += round.result.revenue();
        self.welfare += round.result.welfare();
        if round.result.top_bid.is_finite() {
            // No-reserve second price: the top bidder always wins and pays
            // the second bid (zero with a single bidder).
            self.baseline_revenue += round.result.second_bid.max(0.0);
        }
    }

    /// Fraction of sales priced by the reserve (zero before any sale).
    #[must_use]
    pub fn reserve_hit_rate(&self) -> f64 {
        if self.sales == 0 {
            0.0
        } else {
            self.reserve_hits as f64 / self.sales as f64
        }
    }

    /// Fraction of rounds that sold (zero before any round).
    #[must_use]
    pub fn sale_rate(&self) -> f64 {
        if self.auctions == 0 {
            0.0
        } else {
            self.sales as f64 / self.auctions as f64
        }
    }

    /// Accumulates another ledger (used to fold tenants in tenant order).
    pub fn merge(&mut self, other: &AuctionLedger) {
        self.auctions += other.auctions;
        self.sales += other.sales;
        self.reserve_hits += other.reserve_hits;
        self.revenue += other.revenue;
        self.welfare += other.welfare;
        self.baseline_revenue += other.baseline_revenue;
    }
}

/// Configuration of a self-contained auction market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuctionMarketConfig {
    /// Bidders per round.
    pub bidders: usize,
    /// Feature dimension of the items.
    pub dim: usize,
    /// The valuation distribution bidders draw from.
    pub distribution: ValuationDistribution,
    /// The round floor (privacy compensation) as a fraction of the hidden
    /// base value.
    pub floor_fraction: f64,
    /// Seed of the item stream, the hidden weights, and the bidder draws.
    pub seed: u64,
    /// Optional drift schedule for the hidden value direction `θ`: when
    /// set, bidder valuations move over rounds (piecewise jumps, slow
    /// rotation, or a one-shot adversarial reversal), the regime learned
    /// reserves must be stress-tested under.  `None` reproduces the
    /// stationary market bit for bit.
    pub drift: Option<DriftSchedule>,
}

impl AuctionMarketConfig {
    /// A stationary market (no drift) — the historical construction.
    #[must_use]
    pub fn stationary(
        bidders: usize,
        dim: usize,
        distribution: ValuationDistribution,
        floor_fraction: f64,
        seed: u64,
    ) -> Self {
        Self {
            bidders,
            dim,
            distribution,
            floor_fraction,
            seed,
            drift: None,
        }
    }

    /// Attaches a drift schedule to the market's hidden value direction.
    #[must_use]
    pub fn with_drift(mut self, schedule: DriftSchedule) -> Self {
        self.drift = Some(schedule);
        self
    }
}

/// One generated (not yet settled) auction round.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionRound {
    /// Raw item features `x_t`.
    pub features: Vector,
    /// The round's floor (the reserve-price constraint).
    pub floor: f64,
    /// The hidden base value `θ*·x_t` bidder valuations scatter around.
    pub base_value: f64,
    /// The truthful bids, in bidder order.
    pub bids: Vec<f64>,
}

/// A deterministic generator of auction rounds for one market (one tenant).
#[derive(Debug, Clone)]
pub struct AuctionMarket {
    config: AuctionMarketConfig,
    rng: StdRng,
    theta: Vector,
    /// The drift process moving `theta`, when the config carries a
    /// schedule.  Its RNG stream is private (seeded by the schedule), so
    /// attaching drift never perturbs the item/bidder streams — the same
    /// seed produces the same features and the same relative bid noise,
    /// only the hidden value direction moves.
    drift: Option<DriftProcess>,
}

impl AuctionMarket {
    /// Builds the market: the hidden weights are drawn from the seed, so
    /// two markets with the same config generate identical rounds.
    #[must_use]
    pub fn new(config: AuctionMarketConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let theta = sampling::unit_sphere(&mut rng, config.dim)
            .map(f64::abs)
            .normalized();
        let drift = config
            .drift
            .map(|schedule| DriftProcess::with_raw(schedule, theta.clone()));
        Self {
            config,
            rng,
            theta,
            drift,
        }
    }

    /// The configuration the market was built with.
    #[must_use]
    pub fn config(&self) -> AuctionMarketConfig {
        self.config
    }

    /// The current hidden value direction (unit norm; it moves between
    /// rounds when a drift schedule is attached).
    #[must_use]
    pub fn theta(&self) -> &Vector {
        &self.theta
    }

    /// Discrete drift shifts applied so far (always zero without a
    /// schedule).
    #[must_use]
    pub fn drift_shifts(&self) -> u64 {
        self.drift.as_ref().map_or(0, DriftProcess::shifts)
    }

    /// An empty round shaped for this market, ready for
    /// [`AuctionMarket::next_round_into`].
    fn blank_round(&self) -> AuctionRound {
        AuctionRound {
            features: Vector::zeros(self.config.dim),
            floor: 0.0,
            base_value: 0.0,
            bids: Vec::with_capacity(self.config.bidders),
        }
    }

    /// Generates the next round into `round`, reusing its buffers — the
    /// no-allocation contract of the bench hot loop.  The feature buffer is
    /// filled in place (|N(0, 1)| entries, L2-normalised), bit-identical to
    /// `standard_normal_vector(..).map(f64::abs).normalized()` without the
    /// temporaries.
    pub fn next_round_into(&mut self, round: &mut AuctionRound) {
        if let Some(drift) = self.drift.as_mut() {
            drift.advance();
            self.theta = drift.raw().normalized();
        }
        if round.features.len() != self.config.dim {
            round.features = Vector::zeros(self.config.dim);
        }
        for slot in round.features.as_mut_slice() {
            *slot = sampling::standard_normal(&mut self.rng).abs();
        }
        let norm = round.features.norm();
        if norm != 0.0 {
            round.features.scale_mut(1.0 / norm);
        }
        let base_value = self
            .theta
            .dot(&round.features)
            // pdm-lint: allow(no-unwrap-in-lib) reason="theta and the feature vectors come from the same market config; a dimension mismatch is a constructor bug"
            .expect("theta and features share the market dimension");
        round.floor = self.config.floor_fraction * base_value;
        round.base_value = base_value;
        self.config.distribution.sample_bids_into(
            &mut self.rng,
            base_value,
            self.config.bidders,
            &mut round.bids,
        );
    }

    /// Generates the next round (allocating variant of
    /// [`AuctionMarket::next_round_into`]).
    #[must_use]
    pub fn next_round(&mut self) -> AuctionRound {
        let mut round = self.blank_round();
        self.next_round_into(&mut round);
        round
    }

    /// Runs `rounds` rounds against a reserve policy and returns the
    /// ledger.  Zero rounds return an empty ledger and leave both the
    /// policy and the market's RNG untouched.
    pub fn run<R: ReserveSetter + ?Sized>(
        &mut self,
        setter: &mut R,
        rounds: usize,
    ) -> AuctionLedger {
        let mut ledger = AuctionLedger::default();
        if rounds == 0 {
            return ledger;
        }
        let mut round = self.blank_round();
        for _ in 0..rounds {
            self.next_round_into(&mut round);
            let cleared = run_auction_round(setter, &round.features, round.floor, &round.bids);
            ledger.record(&cleared);
        }
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reserve::{EmpiricalConfig, EmpiricalReserve, StaticReserve};
    use pdm_pricing::prelude::{
        EllipsoidPricing, LinearModel, PricingConfig, PricingSession, SimulationOptions,
    };

    fn config(bidders: usize, seed: u64) -> AuctionMarketConfig {
        // A wide valuation band: the thin-competition regime where a
        // well-placed reserve genuinely beats the unreserved second price.
        AuctionMarketConfig {
            bidders,
            dim: 3,
            distribution: ValuationDistribution::Uniform { spread: 0.95 },
            floor_fraction: 0.3,
            seed,
            drift: None,
        }
    }

    fn session(dim: usize, horizon: usize) -> PricingSession<EllipsoidPricing<LinearModel>> {
        // The δ buffer is load-bearing under auction feedback: the top bid
        // scatters around the base value, so noise-free cuts (δ = 0) would
        // slice the true weights out of the knowledge set.
        let pricing = PricingConfig::new(2.0 * (dim as f64).sqrt(), horizon)
            .with_reserve(true)
            .with_uncertainty(0.1);
        PricingSession::new(
            EllipsoidPricing::new(LinearModel::new(dim), pricing),
            horizon,
            SimulationOptions::default(),
        )
        .without_latency_tracking()
    }

    #[test]
    fn rounds_are_deterministic_in_the_seed() {
        let mut a = AuctionMarket::new(config(4, 9));
        let mut b = AuctionMarket::new(config(4, 9));
        for _ in 0..10 {
            assert_eq!(a.next_round(), b.next_round());
        }
        let differs = AuctionMarket::new(config(4, 10)).next_round();
        assert_ne!(a.next_round().bids, differs.bids);
    }

    #[test]
    fn floors_track_the_base_value() {
        let mut market = AuctionMarket::new(config(2, 5));
        for _ in 0..20 {
            let round = market.next_round();
            assert!(round.base_value > 0.0);
            assert!((round.floor - 0.3 * round.base_value).abs() < 1e-12);
            assert_eq!(round.bids.len(), 2);
        }
    }

    #[test]
    fn static_floor_policy_sells_most_rounds_and_records_the_baseline() {
        let mut market = AuctionMarket::new(config(4, 21));
        let mut policy = StaticReserve::at_floor();
        let ledger = market.run(&mut policy, 200);
        assert_eq!(ledger.auctions, 200);
        // A floor at 0.3·v against bids ≥ 0.6·v sells every round.
        assert_eq!(ledger.sales, 200);
        assert!(ledger.revenue > 0.0);
        assert!(ledger.welfare >= ledger.revenue);
        assert!(ledger.baseline_revenue > 0.0);
        // With four bidders the second bid usually clears the floor.
        assert!(ledger.reserve_hit_rate() < 0.5);
        assert!((ledger.sale_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn learned_session_reserve_beats_the_no_reserve_baseline_with_thin_competition() {
        // Two bidders leave a wide gap between the top and second bid — the
        // regime where a learned reserve pays.  The session converges to
        // quoting near the base value, well above the second bid.
        let rounds = 1_500;
        let mut market = AuctionMarket::new(config(2, 33));
        let mut policy = session(3, rounds);
        let ledger = market.run(&mut policy, rounds);
        assert!(
            ledger.revenue > ledger.baseline_revenue,
            "learned reserve revenue {} must beat the no-reserve baseline {}",
            ledger.revenue,
            ledger.baseline_revenue,
        );
        assert!(ledger.reserve_hits > 0);
        assert_eq!(policy.rounds_closed(), rounds as u64);
    }

    #[test]
    fn empirical_reserve_beats_the_baseline_too() {
        let mut market = AuctionMarket::new(config(2, 45));
        let mut policy = EmpiricalReserve::new(EmpiricalConfig::default());
        let ledger = market.run(&mut policy, 800);
        assert!(
            ledger.revenue > ledger.baseline_revenue,
            "empirical reserve revenue {} vs baseline {}",
            ledger.revenue,
            ledger.baseline_revenue,
        );
    }

    #[test]
    fn zero_rounds_touch_nothing() {
        let mut market = AuctionMarket::new(config(3, 7));
        let mut policy = StaticReserve::at_floor();
        let ledger = market.run(&mut policy, 0);
        assert_eq!(ledger, AuctionLedger::default());
        // The RNG stream was not consumed: the next round matches a fresh
        // market's first round.
        let mut fresh = AuctionMarket::new(config(3, 7));
        assert_eq!(market.next_round(), fresh.next_round());
    }

    #[test]
    fn ledger_merge_folds_counters_and_sums() {
        let mut market = AuctionMarket::new(config(3, 7));
        let mut policy = StaticReserve::at_floor();
        let a = market.run(&mut policy, 50);
        let b = market.run(&mut policy, 70);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.auctions, 120);
        assert_eq!(merged.sales, a.sales + b.sales);
        assert!((merged.revenue - (a.revenue + b.revenue)).abs() < 1e-12);
        assert!((merged.welfare - (a.welfare + b.welfare)).abs() < 1e-12);
    }

    fn drifting(seed: u64, kind: pdm_pricing::drift::DriftKind) -> AuctionMarketConfig {
        config(2, seed).with_drift(DriftSchedule { kind, seed: 99 })
    }

    #[test]
    fn drift_moves_valuations_but_not_the_item_stream() {
        use pdm_pricing::drift::DriftKind;
        let kind = DriftKind::PiecewiseJumps {
            period: 10,
            magnitude: 1.0,
        };
        let mut stationary = AuctionMarket::new(config(2, 9));
        let mut drifting = AuctionMarket::new(drifting(9, kind));
        let mut diverged = false;
        for t in 0..30 {
            let a = stationary.next_round();
            let b = drifting.next_round();
            // The drift stream is private: items are identical forever.
            assert_eq!(a.features, b.features, "round {t}");
            if (a.base_value - b.base_value).abs() > 1e-9 {
                diverged = true;
                assert!(t >= 10, "values must not move before the first jump");
            }
        }
        assert!(diverged, "a full-magnitude jump must move the base values");
        assert_eq!(drifting.drift_shifts(), 2);
        assert_eq!(stationary.drift_shifts(), 0);
        // The drifting value direction stays a unit vector.
        assert!((drifting.theta().norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn drifting_markets_are_deterministic_in_their_seeds() {
        use pdm_pricing::drift::DriftKind;
        let kind = DriftKind::Rotation { rate: 0.05 };
        let mut a = AuctionMarket::new(drifting(13, kind));
        let mut b = AuctionMarket::new(drifting(13, kind));
        for _ in 0..25 {
            assert_eq!(a.next_round(), b.next_round());
        }
    }

    #[test]
    fn learned_reserves_survive_an_adversarial_valuation_shift() {
        use pdm_pricing::drift::DriftKind;
        // The hidden value direction reverses halfway: the stress test the
        // drift layer exists for.  The session policy must keep clearing
        // rounds (no panic, no permanent no-sale lock-up) and its ledger
        // must stay consistent.
        let rounds = 600;
        let kind = DriftKind::AdversarialShift {
            at_round: 300,
            magnitude: 1.0,
        };
        let mut market = AuctionMarket::new(drifting(33, kind));
        let mut policy = session(3, rounds);
        let ledger = market.run(&mut policy, rounds);
        assert_eq!(ledger.auctions, rounds as u64);
        assert_eq!(market.drift_shifts(), 1);
        assert!(ledger.sales > 0);
        assert!(ledger.welfare >= ledger.revenue);
        assert_eq!(policy.rounds_closed(), rounds as u64);
        // Post-shift rounds still sell: run 100 more and require sales.
        let tail = market.run(&mut policy, 100);
        assert!(
            tail.sales > 0,
            "the learned reserve must keep selling after the reversal"
        );
    }

    #[test]
    fn shared_round_path_matches_a_hand_run() {
        // `run` and a hand loop over `run_auction_round` are the same code.
        let mut by_run = AuctionMarket::new(config(3, 55));
        let mut policy_a = StaticReserve::new(0.1);
        let ledger_a = by_run.run(&mut policy_a, 40);

        let mut by_hand = AuctionMarket::new(config(3, 55));
        let mut policy_b = StaticReserve::new(0.1);
        let mut ledger_b = AuctionLedger::default();
        for _ in 0..40 {
            let round = by_hand.next_round();
            let cleared =
                run_auction_round(&mut policy_b, &round.features, round.floor, &round.bids);
            ledger_b.record(&cleared);
        }
        assert_eq!(ledger_a, ledger_b);
    }
}
