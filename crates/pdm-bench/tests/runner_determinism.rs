//! Determinism suite for the parallel runner, plus the `BENCH_*.json`
//! schema round-trip.
//!
//! The acceptance bar for the runner is that the *aggregates* — everything
//! except wall-clock derived perf figures — are **byte-identical** no matter
//! how many workers execute the grid.  These tests run a small fixed grid
//! with 1 and 4 workers and compare the canonical report fingerprints as
//! strings.

use pdm_bench::auction::{auction_grid, run_auction_cells};
use pdm_bench::drift::{drift_grid, run_drift_cells};
use pdm_bench::grid::{expand_jobs, CellSpec, Checkpoint, JobSpec, SyntheticMechanism};
use pdm_bench::json::Json;
use pdm_bench::linear_market::{LinearMarketConfig, Version};
use pdm_bench::report::{build_experiment_reports, BenchReport, SCHEMA_VERSION};
use pdm_bench::runner::run_jobs;
use pdm_bench::serve::run_serve_grid;
use pdm_bench::Scale;

/// A small heterogeneous grid: a market cell, a synthetic cell with
/// checkpoints, and a deterministic Lemma-8 cell.
fn fixed_grid() -> Vec<Vec<CellSpec>> {
    let config = LinearMarketConfig {
        dim: 4,
        rounds: 200,
        num_owners: 60,
        delta: 0.01,
        seed: 7,
    };
    vec![
        vec![
            CellSpec::new(
                "market/with-reserve",
                JobSpec::LinearMarket {
                    config,
                    version: Version::WithReserve,
                },
            )
            .with_checkpoints(vec![Checkpoint::Round(50), Checkpoint::Fraction(1.0)]),
            CellSpec::new("market/baseline", JobSpec::LinearBaseline { config }),
        ],
        vec![
            CellSpec::new(
                "synthetic/ellipsoid",
                JobSpec::Synthetic {
                    dim: 3,
                    rounds: 150,
                    env_seed: 11,
                    run_seed: 12,
                    reserve: Some(true),
                    epsilon: None,
                    mechanism: SyntheticMechanism::Ellipsoid,
                },
            )
            .with_checkpoints(vec![Checkpoint::Round(10)]),
            CellSpec::new(
                "lemma8/correct",
                JobSpec::Lemma8 {
                    horizon: 80,
                    conservative_cuts: false,
                },
            ),
        ],
    ]
}

/// Runs the fixed grid with the given worker count and builds the report
/// through the same aggregation path the `bench` CLI uses.
fn report_with_workers(workers: usize, reps: u64) -> BenchReport {
    let grid = fixed_grid();
    let jobs = expand_jobs(&grid, reps);
    let results = run_jobs(&jobs, workers);
    let names: Vec<String> = (0..grid.len()).map(|e| format!("experiment-{e}")).collect();
    let experiments = build_experiment_reports(
        names
            .iter()
            .map(String::as_str)
            .zip(grid.iter().map(Vec::as_slice)),
        &jobs,
        &results,
    );
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "determinism-suite".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps,
        wall_clock_secs: 0.0,
        experiments,
        serve: Vec::new(),
        auction: Vec::new(),
        drift: Vec::new(),
    }
}

/// Runs the full quick-scale serve grid with the given drain worker count
/// and wraps it in a report, the way `bench serve --workers N` does.
fn serve_report_with_workers(workers: usize) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "serve".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps: 1,
        wall_clock_secs: 0.0,
        experiments: Vec::new(),
        serve: run_serve_grid(Scale::Quick, workers, 1).expect("the serve grid must run"),
        auction: Vec::new(),
        drift: Vec::new(),
    }
}

/// Runs the full quick-scale auction grid with the given drain worker count
/// and wraps it in a report, the way `bench auction --workers N` does.
fn auction_report_with_workers(workers: usize) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "auction".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps: 1,
        wall_clock_secs: 0.0,
        experiments: Vec::new(),
        serve: Vec::new(),
        auction: run_auction_cells(&auction_grid(Scale::Quick), workers, 1)
            .expect("the auction grid must run"),
        drift: Vec::new(),
    }
}

/// Runs the full quick-scale drift grid with the given drain worker count
/// and wraps it in a report, the way `bench drift --workers N` does.
fn drift_report_with_workers(workers: usize) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "drift".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps: 1,
        wall_clock_secs: 0.0,
        experiments: Vec::new(),
        serve: Vec::new(),
        auction: Vec::new(),
        drift: run_drift_cells(&drift_grid(Scale::Quick), workers, 1)
            .expect("the drift grid must run"),
    }
}

#[test]
fn drift_aggregates_are_byte_identical_for_1_and_4_workers() {
    // The acceptance bar of the drift layer: the whole quick grid — every
    // drift kind × magnitude × policy — must produce byte-identical
    // revenue/regret/post-shift/detector aggregates no matter how many
    // workers drain the shards.  (Each run additionally verified every
    // posted price and drift counter against a serial per-tenant replay
    // inside `run_drift_cells`.)
    let serial = drift_report_with_workers(1);
    let parallel = drift_report_with_workers(4);
    assert!(!serial.drift.is_empty());
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "drain worker count must not affect any drift aggregate"
    );
    for cell in &parallel.drift {
        assert!(cell.perf.quotes_per_sec > 0.0, "{}", cell.label);
    }
    assert!(serial.validate().is_empty());
    assert!(parallel.validate().is_empty());
}

#[test]
fn auction_aggregates_are_byte_identical_for_1_and_4_workers() {
    // The acceptance bar of the auction layer: the whole quick grid —
    // every bidder count × distribution × reserve policy — must produce
    // byte-identical revenue/welfare/hit aggregates no matter how many
    // workers drain the shards.  (Each run additionally verified every
    // reserve and clearing price against a serial per-tenant replay inside
    // `run_auction_cells`.)
    let serial = auction_report_with_workers(1);
    let parallel = auction_report_with_workers(4);
    assert!(!serial.auction.is_empty());
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "drain worker count must not affect any auction aggregate"
    );
    for cell in &parallel.auction {
        assert!(cell.perf.rounds_per_sec > 0.0, "{}", cell.label);
    }
    assert!(serial.validate().is_empty());
    assert!(parallel.validate().is_empty());
}

#[test]
fn aggregates_are_bit_identical_for_1_and_4_workers() {
    let serial = report_with_workers(1, 2);
    let parallel = report_with_workers(4, 2);
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "worker count must not affect any deterministic aggregate"
    );
}

#[test]
fn serve_aggregates_are_byte_identical_for_1_and_4_workers() {
    // The acceptance bar of the serving engine: the whole quick serve grid —
    // every tenant count × arrival mix cell, including the shedding bursty
    // cells — must produce byte-identical revenue/regret aggregates no
    // matter how many workers drain the shards.  (Each run additionally
    // verified itself against a serial per-tenant replay inside
    // `run_serve_grid`.)
    let serial = serve_report_with_workers(1);
    let parallel = serve_report_with_workers(4);
    assert!(!serial.serve.is_empty());
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "drain worker count must not affect any serve aggregate"
    );
    // The v2 report carries the throughput figures the fingerprint ignores.
    for cell in &parallel.serve {
        assert!(cell.perf.quotes_per_sec > 0.0, "{}", cell.label);
        assert!(
            cell.perf.latency_p99_micros >= cell.perf.latency_p50_micros,
            "{}",
            cell.label
        );
    }
    assert!(serial.validate().is_empty());
    assert!(parallel.validate().is_empty());
}

#[test]
fn repetition_count_changes_aggregates_but_not_their_health() {
    let single = report_with_workers(2, 1);
    let triple = report_with_workers(2, 3);
    assert_ne!(
        single.deterministic_fingerprint(),
        triple.deterministic_fingerprint(),
        "extra reps draw new seeds, so the aggregates must move"
    );
    assert!(single.validate().is_empty());
    assert!(triple.validate().is_empty());
    // With 3 reps the market cells have real spread.
    let market = &triple.experiments[0].cells[0];
    assert_eq!(market.reps, 3);
    assert!(market.cumulative_regret.std > 0.0);
    assert!(market.cumulative_regret.ci95_half > 0.0);
    // The Lemma-8 game is deterministic: zero spread by construction.
    let lemma = &triple.experiments[1].cells[1];
    assert_eq!(lemma.cumulative_regret.std, 0.0);
}

#[test]
fn report_survives_a_full_json_round_trip() {
    let report = report_with_workers(2, 2);
    let rendered = report.to_json().render_pretty();
    let parsed = Json::parse(&rendered).expect("the emitted JSON must parse");
    let recovered = BenchReport::from_json(&parsed).expect("the schema must round-trip");
    // Struct equality cannot be used here — real reports legitimately carry
    // NaN perf fields (Lemma-8 cells have no latency trace) and NaN != NaN.
    // The schema guarantee is canonical-render stability instead.
    assert_eq!(recovered.to_json().render_pretty(), rendered);
    assert_eq!(
        recovered.deterministic_fingerprint(),
        report.deterministic_fingerprint()
    );
    // Spot-check a non-NaN field recovered exactly.
    assert_eq!(
        recovered.experiments[0].cells[0].cumulative_regret.mean,
        report.experiments[0].cells[0].cumulative_regret.mean
    );
    assert_eq!(recovered.workers, report.workers);
}

#[test]
fn checkpoints_resolve_identically_across_worker_counts() {
    let a = report_with_workers(1, 1);
    let b = report_with_workers(3, 1);
    let cell_a = &a.experiments[0].cells[0];
    let cell_b = &b.experiments[0].cells[0];
    assert_eq!(cell_a.checkpoints.len(), 2);
    assert_eq!(cell_a.checkpoints[0].round, 50);
    assert_eq!(cell_a.checkpoints[1].round, 200);
    for (ca, cb) in cell_a.checkpoints.iter().zip(&cell_b.checkpoints) {
        assert_eq!(ca.round, cb.round);
        assert_eq!(ca.cumulative_regret.mean, cb.cumulative_regret.mean);
        assert_eq!(ca.regret_ratio.mean, cb.regret_ratio.mean);
    }
}
