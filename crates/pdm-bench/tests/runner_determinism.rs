//! Determinism suite for the parallel runner, plus the `BENCH_*.json`
//! schema round-trip.
//!
//! The acceptance bar for the runner is that the *aggregates* — everything
//! except wall-clock derived perf figures — are **byte-identical** no matter
//! how many workers execute the grid.  These tests run a small fixed grid
//! with 1 and 4 workers and compare the canonical report fingerprints as
//! strings.

use pdm_bench::auction::{auction_grid, run_auction_cells};
use pdm_bench::drift::{drift_grid, run_drift_cells};
use pdm_bench::grid::{expand_jobs, CellSpec, Checkpoint, JobSpec, SyntheticMechanism};
use pdm_bench::json::Json;
use pdm_bench::linear_market::{LinearMarketConfig, Version};
use pdm_bench::longhaul::{longhaul_grid, run_longhaul_cells};
use pdm_bench::privacy::{privacy_grid, run_privacy_cells};
use pdm_bench::report::{build_experiment_reports, BenchReport, PerfSummary, SCHEMA_VERSION};
use pdm_bench::runner::run_jobs;
use pdm_bench::serve::{run_serve_cells_obs, serve_grid};
use pdm_bench::Scale;
use pdm_linalg::{sampling, Vector};
use pdm_service::{
    MarketService, MetricRegistry, OutcomeReport, Payload, QueryRequest, ServiceConfig,
    TenantConfig, TenantId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small heterogeneous grid: a market cell, a synthetic cell with
/// checkpoints, and a deterministic Lemma-8 cell.
fn fixed_grid() -> Vec<Vec<CellSpec>> {
    let config = LinearMarketConfig {
        dim: 4,
        rounds: 200,
        num_owners: 60,
        delta: 0.01,
        seed: 7,
    };
    vec![
        vec![
            CellSpec::new(
                "market/with-reserve",
                JobSpec::LinearMarket {
                    config,
                    version: Version::WithReserve,
                },
            )
            .with_checkpoints(vec![Checkpoint::Round(50), Checkpoint::Fraction(1.0)]),
            CellSpec::new("market/baseline", JobSpec::LinearBaseline { config }),
        ],
        vec![
            CellSpec::new(
                "synthetic/ellipsoid",
                JobSpec::Synthetic {
                    dim: 3,
                    rounds: 150,
                    env_seed: 11,
                    run_seed: 12,
                    reserve: Some(true),
                    epsilon: None,
                    mechanism: SyntheticMechanism::Ellipsoid,
                },
            )
            .with_checkpoints(vec![Checkpoint::Round(10)]),
            CellSpec::new(
                "lemma8/correct",
                JobSpec::Lemma8 {
                    horizon: 80,
                    conservative_cuts: false,
                },
            ),
        ],
    ]
}

/// Runs the fixed grid with the given worker count and builds the report
/// through the same aggregation path the `bench` CLI uses.
fn report_with_workers(workers: usize, reps: u64) -> BenchReport {
    let grid = fixed_grid();
    let jobs = expand_jobs(&grid, reps);
    let results = run_jobs(&jobs, workers);
    let names: Vec<String> = (0..grid.len()).map(|e| format!("experiment-{e}")).collect();
    let experiments = build_experiment_reports(
        names
            .iter()
            .map(String::as_str)
            .zip(grid.iter().map(Vec::as_slice)),
        &jobs,
        &results,
    );
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "determinism-suite".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps,
        wall_clock_secs: 0.0,
        experiments,
        serve: Vec::new(),
        auction: Vec::new(),
        drift: Vec::new(),
        longhaul: Vec::new(),
        privacy: Vec::new(),
        perf: None,
        obs: None,
    }
}

/// Runs the full quick-scale serve grid with the given drain worker count
/// and wraps it in a report, the way `bench serve --workers N` does — obs
/// registry included, so the fingerprint comparison below also covers the
/// v8 `obs` section.
fn serve_report_with_workers(workers: usize) -> BenchReport {
    let mut obs = MetricRegistry::new();
    let serve = run_serve_cells_obs(&serve_grid(Scale::Quick), workers, 1, &mut obs)
        .expect("the serve grid must run");
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "serve".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps: 1,
        wall_clock_secs: 0.0,
        experiments: Vec::new(),
        perf: PerfSummary::from_serve(&serve),
        serve,
        auction: Vec::new(),
        drift: Vec::new(),
        longhaul: Vec::new(),
        privacy: Vec::new(),
        obs: Some(obs.to_json(true)),
    }
}

/// Runs the full quick-scale auction grid with the given drain worker count
/// and wraps it in a report, the way `bench auction --workers N` does.
fn auction_report_with_workers(workers: usize) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "auction".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps: 1,
        wall_clock_secs: 0.0,
        experiments: Vec::new(),
        serve: Vec::new(),
        auction: run_auction_cells(&auction_grid(Scale::Quick), workers, 1)
            .expect("the auction grid must run"),
        drift: Vec::new(),
        longhaul: Vec::new(),
        privacy: Vec::new(),
        perf: None,
        obs: None,
    }
}

/// Runs the full quick-scale drift grid with the given drain worker count
/// and wraps it in a report, the way `bench drift --workers N` does.
fn drift_report_with_workers(workers: usize) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "drift".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps: 1,
        wall_clock_secs: 0.0,
        experiments: Vec::new(),
        serve: Vec::new(),
        auction: Vec::new(),
        drift: run_drift_cells(&drift_grid(Scale::Quick), workers, 1)
            .expect("the drift grid must run"),
        longhaul: Vec::new(),
        privacy: Vec::new(),
        perf: None,
        obs: None,
    }
}

/// Runs the full quick-scale longhaul grid with the given drain worker
/// count and wraps it in a report, the way `bench longhaul --workers N`
/// does.
fn longhaul_report_with_workers(workers: usize) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "longhaul".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps: 1,
        wall_clock_secs: 0.0,
        experiments: Vec::new(),
        serve: Vec::new(),
        auction: Vec::new(),
        drift: Vec::new(),
        longhaul: run_longhaul_cells(&longhaul_grid(Scale::Quick), workers, 1)
            .expect("the longhaul grid must run"),
        privacy: Vec::new(),
        perf: None,
        obs: None,
    }
}

/// Runs the full quick-scale privacy grid with the given drain worker
/// count and wraps it in a report, the way `bench privacy --workers N`
/// does.
fn privacy_report_with_workers(workers: usize) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: "privacy".to_owned(),
        git_describe: "test".to_owned(),
        scale: "quick".to_owned(),
        workers,
        reps: 1,
        wall_clock_secs: 0.0,
        experiments: Vec::new(),
        serve: Vec::new(),
        auction: Vec::new(),
        drift: Vec::new(),
        longhaul: Vec::new(),
        privacy: run_privacy_cells(&privacy_grid(Scale::Quick), workers, 1)
            .expect("the privacy grid must run"),
        perf: None,
        obs: None,
    }
}

#[test]
fn privacy_aggregates_are_byte_identical_for_1_and_4_workers() {
    // The acceptance bar of the ledger subsystem: the whole quick privacy
    // grid — ε debits, compensation accruals, sticky owner retirement, the
    // per-wave exhaustion trajectory, arbitrage clamps, and the throttled
    // supply counts — must produce byte-identical aggregates no matter how
    // many workers drain the shards.  (Each run additionally verified the
    // mid-run WAL restore against the original over the identical post-cut
    // trace, bit for bit, inside `run_privacy_cells`.)
    let serial = privacy_report_with_workers(1);
    let parallel = privacy_report_with_workers(4);
    assert!(!serial.privacy.is_empty());
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "drain worker count must not affect any privacy-ledger aggregate"
    );
    for cell in &parallel.privacy {
        assert!(cell.perf.quotes_per_sec > 0.0, "{}", cell.label);
        assert!(cell.owners_exhausted > 0, "{}", cell.label);
        assert!(cell.throttled > 0, "{}", cell.label);
        assert!(cell.quoted_late < cell.quoted_early, "{}", cell.label);
        assert!(
            cell.compensation.mean <= cell.revenue.mean,
            "{}: payouts exceeded revenue",
            cell.label
        );
    }
    assert!(serial.validate().is_empty());
    assert!(parallel.validate().is_empty());
}

#[test]
fn longhaul_aggregates_are_byte_identical_for_1_and_4_workers() {
    // The acceptance bar of the persistence/paging layer: the whole quick
    // longhaul grid — WAL checkpoints under traffic, the timed mid-run
    // restore, and the eviction churn under the resident cap — must produce
    // byte-identical ledgers AND byte-identical paging/WAL counters no
    // matter how many workers drain the shards.  (Each run additionally
    // verified the restored service against the original over the identical
    // post-cut trace, bit for bit, inside `run_longhaul_cells`.)
    let serial = longhaul_report_with_workers(1);
    let parallel = longhaul_report_with_workers(4);
    assert!(!serial.longhaul.is_empty());
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "drain worker count must not affect any longhaul aggregate"
    );
    for cell in &parallel.longhaul {
        assert!(cell.perf.quotes_per_sec > 0.0, "{}", cell.label);
        assert!(cell.perf.restore_latency_micros > 0.0, "{}", cell.label);
        assert!(cell.evictions > 0, "{}", cell.label);
        assert!(
            cell.max_resident <= cell.resident_capacity,
            "{}",
            cell.label
        );
    }
    assert!(serial.validate().is_empty());
    assert!(parallel.validate().is_empty());
}

#[test]
fn drift_aggregates_are_byte_identical_for_1_and_4_workers() {
    // The acceptance bar of the drift layer: the whole quick grid — every
    // drift kind × magnitude × policy — must produce byte-identical
    // revenue/regret/post-shift/detector aggregates no matter how many
    // workers drain the shards.  (Each run additionally verified every
    // posted price and drift counter against a serial per-tenant replay
    // inside `run_drift_cells`.)
    let serial = drift_report_with_workers(1);
    let parallel = drift_report_with_workers(4);
    assert!(!serial.drift.is_empty());
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "drain worker count must not affect any drift aggregate"
    );
    for cell in &parallel.drift {
        assert!(cell.perf.quotes_per_sec > 0.0, "{}", cell.label);
    }
    assert!(serial.validate().is_empty());
    assert!(parallel.validate().is_empty());
}

#[test]
fn auction_aggregates_are_byte_identical_for_1_and_4_workers() {
    // The acceptance bar of the auction layer: the whole quick grid —
    // every bidder count × distribution × reserve policy — must produce
    // byte-identical revenue/welfare/hit aggregates no matter how many
    // workers drain the shards.  (Each run additionally verified every
    // reserve and clearing price against a serial per-tenant replay inside
    // `run_auction_cells`.)
    let serial = auction_report_with_workers(1);
    let parallel = auction_report_with_workers(4);
    assert!(!serial.auction.is_empty());
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "drain worker count must not affect any auction aggregate"
    );
    for cell in &parallel.auction {
        assert!(cell.perf.rounds_per_sec > 0.0, "{}", cell.label);
    }
    assert!(serial.validate().is_empty());
    assert!(parallel.validate().is_empty());
}

#[test]
fn aggregates_are_bit_identical_for_1_and_4_workers() {
    let serial = report_with_workers(1, 2);
    let parallel = report_with_workers(4, 2);
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "worker count must not affect any deterministic aggregate"
    );
}

#[test]
fn serve_aggregates_are_byte_identical_for_1_and_4_workers() {
    // The acceptance bar of the serving engine: the whole quick serve grid —
    // every tenant count × arrival mix cell, including the shedding bursty
    // cells — must produce byte-identical revenue/regret aggregates no
    // matter how many workers drain the shards.  (Each run additionally
    // verified itself against a serial per-tenant replay inside
    // `run_serve_grid`.)
    let serial = serve_report_with_workers(1);
    let parallel = serve_report_with_workers(4);
    assert!(!serial.serve.is_empty());
    assert_eq!(
        serial.deterministic_fingerprint(),
        parallel.deterministic_fingerprint(),
        "drain worker count must not affect any serve aggregate"
    );
    // The v2 report carries the throughput figures the fingerprint ignores.
    for cell in &parallel.serve {
        assert!(cell.perf.quotes_per_sec > 0.0, "{}", cell.label);
        assert!(
            cell.perf.latency_p99_micros >= cell.perf.latency_p50_micros,
            "{}",
            cell.label
        );
    }
    assert!(serial.validate().is_empty());
    assert!(parallel.validate().is_empty());
}

#[test]
fn obs_registry_is_byte_identical_for_1_and_4_workers() {
    // The acceptance bar of the observability layer: the merged pdm-obs
    // registry of a whole quick serve grid — service counters, per-stage
    // span *work* histograms on the fixed log-bucket grid, and gauges —
    // must render byte-identical deterministic dumps no matter how many
    // workers drain the shards.  (Wall-clock span histograms are excluded
    // by `to_json(true)`, exactly as the v8 report section excludes them.)
    let mut serial = MetricRegistry::new();
    let mut parallel = MetricRegistry::new();
    run_serve_cells_obs(&serve_grid(Scale::Quick), 1, 1, &mut serial)
        .expect("the serve grid must run serially");
    run_serve_cells_obs(&serve_grid(Scale::Quick), 4, 1, &mut parallel)
        .expect("the serve grid must run in parallel");
    let dump = serial.to_json(true).render();
    assert_eq!(
        dump,
        parallel.to_json(true).render(),
        "drain worker count must not move a single deterministic bucket"
    );
    // The dump actually carries the hot-path stages and the exported
    // service counters, not just an empty shell.
    for needle in [
        "shard.quote.work_items",
        "shard.observe.work_items",
        "shard.drain.work_items",
        "quotes_served_total",
    ] {
        assert!(dump.contains(needle), "dump is missing `{needle}`");
    }
    // The full scrape additionally carries the wall-clock histograms the
    // deterministic dump excludes, and still lints as a Prometheus
    // exposition.
    let full = serial.to_json(false).render();
    assert!(full.contains("shard.quote.wall_nanos"));
    assert!(!dump.contains("shard.quote.wall_nanos"));
    let lint = pdm_obs::prom::parse(&serial.render_prometheus()).expect("scrape lints clean");
    assert!(lint.families > 0 && lint.samples > 0);
}

#[test]
fn repetition_count_changes_aggregates_but_not_their_health() {
    let single = report_with_workers(2, 1);
    let triple = report_with_workers(2, 3);
    assert_ne!(
        single.deterministic_fingerprint(),
        triple.deterministic_fingerprint(),
        "extra reps draw new seeds, so the aggregates must move"
    );
    assert!(single.validate().is_empty());
    assert!(triple.validate().is_empty());
    // With 3 reps the market cells have real spread.
    let market = &triple.experiments[0].cells[0];
    assert_eq!(market.reps, 3);
    assert!(market.cumulative_regret.std > 0.0);
    assert!(market.cumulative_regret.ci95_half > 0.0);
    // The Lemma-8 game is deterministic: zero spread by construction.
    let lemma = &triple.experiments[1].cells[1];
    assert_eq!(lemma.cumulative_regret.std, 0.0);
}

#[test]
fn report_survives_a_full_json_round_trip() {
    let report = report_with_workers(2, 2);
    let rendered = report.to_json().render_pretty();
    let parsed = Json::parse(&rendered).expect("the emitted JSON must parse");
    let recovered = BenchReport::from_json(&parsed).expect("the schema must round-trip");
    // Struct equality cannot be used here — real reports legitimately carry
    // NaN perf fields (Lemma-8 cells have no latency trace) and NaN != NaN.
    // The schema guarantee is canonical-render stability instead.
    assert_eq!(recovered.to_json().render_pretty(), rendered);
    assert_eq!(
        recovered.deterministic_fingerprint(),
        report.deterministic_fingerprint()
    );
    // Spot-check a non-NaN field recovered exactly.
    assert_eq!(
        recovered.experiments[0].cells[0].cumulative_regret.mean,
        report.experiments[0].cells[0].cumulative_regret.mean
    );
    assert_eq!(recovered.workers, report.workers);
}

/// One pre-drawn round of the differential replay workload: the buyer's
/// decision and ground truth are fixed up front, so both drain disciplines
/// see the exact same request stream.
struct ReplayRound {
    tenant: TenantId,
    features: Vector,
    reserve_price: f64,
    accepted: bool,
    market_value: f64,
}

/// A 512-round seeded serve workload over 8 tenants: the first half arrives
/// in long per-tenant blocks (maximal same-tenant runs for `serve_batch`),
/// the second half in round-robin waves (runs of length ≲ 2).
fn replay_workload() -> Vec<Vec<ReplayRound>> {
    let tenants = 8;
    let rounds_per_tenant = 64;
    let dim = 3;
    let mut rng = StdRng::seed_from_u64(88_512);
    (0..tenants)
        .map(|t| {
            (0..rounds_per_tenant)
                .map(|_| ReplayRound {
                    tenant: TenantId(t as u64 + 1),
                    features: sampling::uniform_vector(&mut rng, dim, -1.0, 1.0),
                    reserve_price: sampling::uniform(&mut rng, 0.0, 0.6),
                    accepted: sampling::uniform(&mut rng, 0.0, 1.0) < 0.55,
                    market_value: sampling::uniform(&mut rng, -0.5, 1.5),
                })
                .collect()
        })
        .collect()
}

fn replay_service() -> MarketService {
    let mut service = MarketService::new(ServiceConfig {
        shards: 4,
        queue_capacity: 2048,
        ..ServiceConfig::default()
    })
    .expect("a valid service config");
    for t in 1..=8u64 {
        service
            .register_tenant(TenantId(t), TenantConfig::standard(3, 512))
            .expect("tenant ids are unique");
    }
    service
}

/// Submits the workload in the fixed global order, draining with the given
/// discipline: `drain_every` = usize::MAX means "bulk" (one drain per
/// phase, so shards see maximal batched runs); 1 means one-at-a-time
/// (every request drained alone — the pre-batching dispatch).  Returns the
/// responses keyed by submission sequence plus the quiescent service.
fn run_replay(drain_every: usize) -> (Vec<(u64, Payload)>, MarketService) {
    let workload = replay_workload();
    let mut service = replay_service();
    let mut responses = Vec::new();
    let mut since_drain = 0usize;
    let submit = |service: &mut MarketService,
                  responses: &mut Vec<pdm_service::Response>,
                  since_drain: &mut usize,
                  round: &ReplayRound| {
        service
            .submit_quote(QueryRequest {
                tenant: round.tenant,
                features: round.features.clone(),
                reserve_price: round.reserve_price,
            })
            .expect("queue has capacity");
        *since_drain += 1;
        if *since_drain >= drain_every {
            service.drain_into(4, responses);
            *since_drain = 0;
        }
        service
            .submit_outcome(OutcomeReport {
                tenant: round.tenant,
                accepted: round.accepted,
                market_value: Some(round.market_value),
            })
            .expect("queue has capacity");
        *since_drain += 1;
        if *since_drain >= drain_every {
            service.drain_into(4, responses);
            *since_drain = 0;
        }
    };

    // Phase 1: long per-tenant blocks (rounds 0..32 of every tenant).
    for tenant_rounds in &workload {
        for round in &tenant_rounds[..32] {
            submit(&mut service, &mut responses, &mut since_drain, round);
        }
    }
    service.drain_into(4, &mut responses);
    since_drain = 0;
    // Phase 2: round-robin waves (rounds 32..64, one per tenant per wave).
    for wave in 32..64 {
        for tenant_rounds in &workload {
            submit(
                &mut service,
                &mut responses,
                &mut since_drain,
                &tenant_rounds[wave],
            );
        }
    }
    service.drain_into(4, &mut responses);
    assert_eq!(service.queued_requests(), 0);

    let mut keyed: Vec<(u64, Payload)> = responses
        .into_iter()
        .map(|response| (response.seq, response.payload))
        .collect();
    keyed.sort_by_key(|(seq, _)| *seq);
    (keyed, service)
}

#[test]
fn batched_drain_replays_one_at_a_time_bit_identically() {
    // The differential replay behind the batched-drain rework: the same
    // 512-round seeded workload driven through bulk drains (maximal
    // same-tenant runs handed to `serve_batch`) and through one-at-a-time
    // submit→drain (the pre-batching dispatch) must produce the same
    // response for every sequence number, byte-identical snapshots, and
    // identical deterministic metrics fingerprints.
    let (batched_responses, batched) = run_replay(usize::MAX);
    let (serial_responses, serial) = run_replay(1);

    assert_eq!(batched_responses.len(), 1024, "512 quotes + 512 outcomes");
    assert_eq!(batched_responses.len(), serial_responses.len());
    for ((seq_a, payload_a), (seq_b, payload_b)) in batched_responses.iter().zip(&serial_responses)
    {
        assert_eq!(seq_a, seq_b, "submission sequences must align");
        assert_eq!(payload_a, payload_b, "payload diverged at seq {seq_a}");
    }

    // Byte-identical snapshots: every tenant's knowledge set, ledger, and
    // counter serialises to the same canonical JSON.
    let snapshot_a = batched.snapshot().expect("quiescent service snapshots");
    let snapshot_b = serial.snapshot().expect("quiescent service snapshots");
    assert_eq!(
        snapshot_a.render(),
        snapshot_b.render(),
        "drain batching must not move any snapshotted state"
    );

    // ShardMetrics fingerprint: every deterministic field, at the bit level
    // (latency is wall-clock and deliberately excluded).
    let metrics_a = batched.aggregate_metrics();
    let metrics_b = serial.aggregate_metrics();
    assert_eq!(metrics_a.quotes_served, metrics_b.quotes_served);
    assert_eq!(metrics_a.observations, metrics_b.observations);
    assert_eq!(metrics_a.sales, metrics_b.sales);
    assert_eq!(metrics_a.revenue.to_bits(), metrics_b.revenue.to_bits());
    assert_eq!(metrics_a.regret.to_bits(), metrics_b.regret.to_bits());
    assert_eq!(
        metrics_a.regret_proxy.to_bits(),
        metrics_b.regret_proxy.to_bits()
    );
    assert_eq!(metrics_a.shed, metrics_b.shed);
    assert_eq!(metrics_a.rejected, metrics_b.rejected);
    assert_eq!(metrics_a.drift_fires, metrics_b.drift_fires);
    assert_eq!(metrics_a.drift_restarts, metrics_b.drift_restarts);
    assert_eq!(metrics_a.quotes_served, 512);
    assert_eq!(metrics_a.observations, 512);

    // And the per-tenant regret ledgers agree exactly.
    for t in 1..=8u64 {
        let report_a = batched.tenant_report(TenantId(t)).expect("registered");
        let report_b = serial.tenant_report(TenantId(t)).expect("registered");
        assert_eq!(report_a.rounds, report_b.rounds);
        assert_eq!(
            report_a.cumulative_regret.to_bits(),
            report_b.cumulative_regret.to_bits(),
            "tenant {t} regret ledger diverged"
        );
        assert_eq!(
            report_a.cumulative_revenue.to_bits(),
            report_b.cumulative_revenue.to_bits()
        );
    }
}

#[test]
fn checkpoints_resolve_identically_across_worker_counts() {
    let a = report_with_workers(1, 1);
    let b = report_with_workers(3, 1);
    let cell_a = &a.experiments[0].cells[0];
    let cell_b = &b.experiments[0].cells[0];
    assert_eq!(cell_a.checkpoints.len(), 2);
    assert_eq!(cell_a.checkpoints[0].round, 50);
    assert_eq!(cell_a.checkpoints[1].round, 200);
    for (ca, cb) in cell_a.checkpoints.iter().zip(&cell_b.checkpoints) {
        assert_eq!(ca.round, cb.round);
        assert_eq!(ca.cumulative_regret.mean, cb.cumulative_regret.mean);
        assert_eq!(ca.regret_ratio.mean, cb.regret_ratio.mean);
    }
}
