//! Criterion microbenchmarks for the auction-clearing hot path.
//!
//! [`clear_second_price`] is the inner loop of every auction tenant: one
//! sort-free pass tracking the top two bids, no allocation.  The benches
//! pin that shape — clearing must stay O(bidders) with a flat per-round
//! cost, and the full round path (reserve quote → clear → policy feedback)
//! must stay allocation-free when driven over reused scratch buffers, like
//! the quote path of the serving engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_auction::{
    clear_second_price, run_auction_round, AuctionMarket, AuctionMarketConfig, EmpiricalConfig,
    EmpiricalReserve, StaticReserve, ValuationDistribution,
};
use pdm_linalg::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic bid panels: `count` rounds of `bidders` bids each.
fn bid_panels(bidders: usize, count: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(17);
    (0..count)
        .map(|_| {
            (0..bidders)
                .map(|_| sampling::uniform(&mut rng, 0.05, 1.95))
                .collect()
        })
        .collect()
}

fn bench_clear_second_price(c: &mut Criterion) {
    let mut group = c.benchmark_group("auction_clear_second_price");
    for &bidders in &[2usize, 8, 64, 512] {
        let panels = bid_panels(bidders, 64);
        group.bench_with_input(BenchmarkId::from_parameter(bidders), &bidders, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let bids = &panels[i % panels.len()];
                i += 1;
                clear_second_price(bids, 0.9)
            });
        });
    }
    group.finish();
}

fn bench_full_round_static(c: &mut Criterion) {
    // The whole round against the stateless policy: quote, clear, observe.
    // Round generation reuses one scratch round, so the measured loop is
    // allocation-free end to end.
    let mut group = c.benchmark_group("auction_round_static_reserve");
    for &bidders in &[2usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(bidders), &bidders, |b, _| {
            let mut market = AuctionMarket::new(AuctionMarketConfig {
                bidders,
                dim: 8,
                distribution: ValuationDistribution::Uniform { spread: 0.95 },
                floor_fraction: 0.3,
                seed: 5,
                drift: None,
            });
            let mut policy = StaticReserve::at_floor();
            let mut round = market.next_round();
            b.iter(|| {
                market.next_round_into(&mut round);
                run_auction_round(&mut policy, &round.features, round.floor, &round.bids)
            });
        });
    }
    group.finish();
}

fn bench_full_round_empirical(c: &mut Criterion) {
    // The empirical setter adds the O(window²) refit on top of clearing.
    let mut group = c.benchmark_group("auction_round_empirical_reserve");
    for &window in &[16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, _| {
            let mut market = AuctionMarket::new(AuctionMarketConfig {
                bidders: 4,
                dim: 8,
                distribution: ValuationDistribution::LogNormal { sigma: 1.2 },
                floor_fraction: 0.3,
                seed: 11,
                drift: None,
            });
            let mut policy = EmpiricalReserve::new(EmpiricalConfig {
                window,
                welfare_weight: 0.0,
            });
            let mut round = market.next_round();
            b.iter(|| {
                market.next_round_into(&mut round);
                run_auction_round(&mut policy, &round.features, round.floor, &round.bids)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_clear_second_price,
    bench_full_round_static,
    bench_full_round_empirical
);
criterion_main!(benches);
