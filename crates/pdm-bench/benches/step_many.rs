//! Criterion microbenchmarks for the batched quoting paths introduced by the
//! hot-path rework: [`ContextualPricing::step_many`] over the paper's
//! mechanism and [`PricingSession::serve_batch`] over full quote→observe
//! rounds, at batch sizes 1 / 8 / 64 / 512.
//!
//! Each criterion iteration serves one whole batch, so the reported mean is
//! *per batch*; the explicit ns/quote summary printed after each group is
//! the per-quote figure (batch time ÷ batch size), which is the number the
//! BENCH report's `quotes/s` column inverts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_linalg::{sampling, Vector};
use pdm_pricing::prelude::{
    BatchRequest, EllipsoidPricing, LinearModel, PricingConfig, PricingSession, SimulationOptions,
    StepOutcome,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const DIM: usize = 8;
const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

fn requests(count: usize) -> Vec<(Vector, f64)> {
    let mut rng = StdRng::seed_from_u64(23);
    (0..count)
        .map(|_| {
            (
                sampling::uniform_vector(&mut rng, DIM, -1.0, 1.0),
                sampling::uniform(&mut rng, 0.0, 0.6),
            )
        })
        .collect()
}

fn mechanism() -> EllipsoidPricing<LinearModel> {
    let config = PricingConfig::new(2.0 * (DIM as f64).sqrt(), 100_000).with_reserve(true);
    EllipsoidPricing::new(LinearModel::new(DIM), config)
}

/// Wall-clock ns/quote over a fixed number of batches, printed alongside the
/// criterion per-batch means so regressions are readable per quote.
fn report_ns_per_quote(label: &str, batch: usize, mut serve_one_batch: impl FnMut()) {
    let batches = (4_096 / batch).max(8);
    let started = Instant::now();
    for _ in 0..batches {
        serve_one_batch();
    }
    let elapsed = started.elapsed();
    let quotes = (batches * batch) as f64;
    println!(
        "{label}/batch_{batch} ... {:.1} ns/quote ({} quotes)",
        elapsed.as_nanos() as f64 / quotes,
        quotes as u64,
    );
}

fn bench_step_many(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_many");
    for &batch in &BATCH_SIZES {
        let pool = requests(batch);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            let mut mech = mechanism();
            let mut out = Vec::with_capacity(batch);
            b.iter(|| {
                out.clear();
                mech.step_many(pool.iter().map(|(f, r)| (f, *r)), &mut out);
                out.len()
            });
        });
    }
    group.finish();
    for &batch in &BATCH_SIZES {
        let pool = requests(batch);
        let mut mech = mechanism();
        let mut out = Vec::with_capacity(batch);
        report_ns_per_quote("step_many", batch, || {
            out.clear();
            mech.step_many(pool.iter().map(|(f, r)| (f, *r)), &mut out);
        });
    }
}

fn bench_serve_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_batch");
    for &batch in &BATCH_SIZES {
        let pool = requests(batch);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            let mut session = PricingSession::new(
                mechanism(),
                100_000,
                SimulationOptions {
                    trace_points: 0,
                    keep_full_trace: false,
                },
            )
            .without_latency_tracking();
            let mut out = Vec::with_capacity(2 * batch);
            b.iter(|| {
                out.clear();
                session.serve_batch(
                    pool.iter().flat_map(|(features, reserve)| {
                        [
                            BatchRequest::Quote {
                                features,
                                reserve_price: *reserve,
                            },
                            BatchRequest::Observe(StepOutcome::accept_only(false)),
                        ]
                    }),
                    &mut out,
                );
                out.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step_many, bench_serve_batch);
criterion_main!(benches);
