//! Criterion microbenchmarks for the two ellipsoid primitives on the per-round
//! hot path: the support-bound computation (lines 5–7 of Algorithm 1) and the
//! Löwner–John update after a cut (lines 14–21).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_ellipsoid::{Ellipsoid, KnowledgeSet};
use pdm_linalg::{sampling, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn directions(dim: usize, count: usize) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..count)
        .map(|_| sampling::unit_sphere(&mut rng, dim))
        .collect()
}

fn bench_support_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("ellipsoid_support_bounds");
    for &dim in &[20usize, 100, 1024] {
        let ellipsoid = Ellipsoid::ball(dim, 2.0);
        let dirs = directions(dim, 32);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let x = &dirs[i % dirs.len()];
                i += 1;
                ellipsoid.support_bounds(x)
            });
        });
    }
    group.finish();
}

fn bench_cut_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("ellipsoid_cut_update");
    for &dim in &[20usize, 100, 1024] {
        let dirs = directions(dim, 32);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            let mut ellipsoid = Ellipsoid::ball(dim, 2.0);
            let mut i = 0usize;
            b.iter(|| {
                let x = &dirs[i % dirs.len()];
                i += 1;
                let (lo, hi) = ellipsoid.support_bounds(x);
                // Central cut through the current midpoint keeps the ellipsoid
                // well-conditioned across iterations.
                let outcome = ellipsoid.cut_below(x, 0.5 * (lo + hi));
                outcome.is_updated()
            });
        });
    }
    group.finish();
}

/// The full fused query→cut round the serving hot path runs: scratch-buffer
/// support bounds (`support_bounds_mut`) followed by the in-place cut —
/// zero allocations per iteration (pinned by the `alloc_count` test in
/// `pdm-ellipsoid`).  Compare against `ellipsoid_cut_update`, whose support
/// query still allocates the boundary vector.
fn bench_cut_round_fused(c: &mut Criterion) {
    let mut group = c.benchmark_group("ellipsoid_cut_round_fused");
    for &dim in &[20usize, 100, 1024] {
        let dirs = directions(dim, 32);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            let mut ellipsoid = Ellipsoid::ball(dim, 2.0);
            let mut i = 0usize;
            b.iter(|| {
                let x = &dirs[i % dirs.len()];
                i += 1;
                let (lo, hi) = ellipsoid.support_bounds_mut(x);
                let outcome = ellipsoid.cut_below(x, 0.5 * (lo + hi));
                outcome.is_updated()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_support_bounds,
    bench_cut_update,
    bench_cut_round_fused
);
criterion_main!(benches);
