//! Criterion microbenchmarks for the per-round latency of the posted-price
//! mechanism (the quantity Section V-D reports) and for the broker-side
//! privacy accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_market::query::QueryWeightDistribution;
use pdm_market::{CompensationContract, DataBroker, DataOwner, QueryGenerator};
use pdm_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One quote + observe cycle of the ellipsoid mechanism at several feature
/// dimensions (paper: 0.115 ms at n = 100, 3.5 ms at n = 1024 sparse).
fn bench_mechanism_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism_round");
    for &dim in &[20usize, 100, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(1);
        let env = SyntheticLinearEnvironment::builder(dim)
            .rounds(16)
            .build(&mut rng);
        let config = PricingConfig::for_environment(&env, 100_000).with_reserve(true);
        // Pre-draw a bank of rounds so the benchmark measures only the
        // mechanism, not the environment.
        let mut env = env;
        let mut rounds = Vec::new();
        while let Some(round) = {
            use pdm_pricing::environment::Environment;
            env.next_round(&mut rng)
        } {
            rounds.push(round);
        }
        group.bench_with_input(BenchmarkId::new("quote_observe", dim), &dim, |b, _| {
            let mut mechanism = EllipsoidPricing::new(LinearModel::new(dim), config);
            let mut i = 0usize;
            b.iter(|| {
                let round = &rounds[i % rounds.len()];
                i += 1;
                let quote = mechanism.quote(&round.features, round.reserve_price);
                let accepted = quote.posted_price <= round.market_value;
                mechanism.observe(&round.features, &quote, accepted);
                quote.posted_price
            });
        });
    }
    group.finish();
}

/// Broker-side privacy accounting + featurisation per query.
fn bench_broker_prepare(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_prepare");
    for &owners in &[100usize, 1_000] {
        let mut rng = StdRng::seed_from_u64(2);
        let population: Vec<DataOwner> = (0..owners)
            .map(|i| DataOwner::new(i as u64, vec![1.0, 2.0, 3.0], 5.0))
            .collect();
        let contracts = CompensationContract::sample_population(&mut rng, owners, 1.0, 1.0);
        let broker = DataBroker::new(population, contracts, 20);
        let mut generator = QueryGenerator::new(owners, QueryWeightDistribution::Gaussian);
        let queries: Vec<_> = (0..64).map(|_| generator.next_query(&mut rng)).collect();
        group.bench_with_input(BenchmarkId::new("owners", owners), &owners, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                broker.prepare(q).reserve_price
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mechanism_round, bench_broker_prepare);
criterion_main!(benches);
