//! Shared harness for the noisy-linear-query experiments (Fig. 4, Fig. 5(a),
//! Table I, Section V-D): a MovieLens-backed data market priced under the
//! linear model by the four mechanism versions and the risk-averse baseline.

use pdm_datasets::MovieLensGenerator;
use pdm_market::query::QueryWeightDistribution;
use pdm_market::{
    CompensationContract, ConsumerPool, DataBroker, DataOwner, MarketEnvironment, QueryGenerator,
};
use pdm_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of one noisy-linear-query experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearMarketConfig {
    /// Feature dimension `n` (number of compensation partitions).
    pub dim: usize,
    /// Horizon `T`.
    pub rounds: usize,
    /// Number of data owners backing the market.
    pub num_owners: usize,
    /// Uncertainty buffer δ used by the "with uncertainty" versions and to
    /// derive the Gaussian market-value noise (the paper fixes δ = 0.01).
    pub delta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LinearMarketConfig {
    /// The paper's per-figure horizon for a given dimension (Fig. 4).
    #[must_use]
    pub fn paper_horizon(dim: usize) -> usize {
        match dim {
            0..=1 => 100,
            2..=40 => 10_000,
            _ => 100_000,
        }
    }
}

/// Builds the MovieLens-backed market environment for one configuration.
///
/// The data owners are the rating users of a synthetic MovieLens population;
/// their per-query privacy compensations (differential-privacy leakage passed
/// through tanh contracts) are partitioned into `dim` features, and the
/// consumer valuation profile follows the paper's √(2n) scaling.
#[must_use]
pub fn build_environment(config: &LinearMarketConfig, noisy: bool) -> MarketEnvironment {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let ratings = MovieLensGenerator::new(config.num_owners, 200, 6).generate(config.seed);
    let owners: Vec<DataOwner> = ratings
        .ratings_by_user()
        .into_iter()
        .enumerate()
        .map(|(i, records)| DataOwner::new(i as u64, records, 5.0))
        .collect();
    let contracts = CompensationContract::sample_population(&mut rng, owners.len(), 1.0, 1.0);
    let broker = DataBroker::new(owners, contracts, config.dim);
    let generator = QueryGenerator::new(config.num_owners, QueryWeightDistribution::Gaussian);
    let noise = if noisy {
        // σ chosen so that the paper's buffer formula reproduces δ.
        let sigma =
            UncertaintyBudget::from_delta(config.delta).implied_gaussian_sigma(config.rounds);
        NoiseModel::Gaussian { std_dev: sigma }
    } else {
        NoiseModel::None
    };
    let consumers = ConsumerPool::sample(&mut rng, config.dim, noise);
    MarketEnvironment::new(broker, generator, consumers, config.rounds)
}

/// The four mechanism versions evaluated in Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// Algorithm 1*: no reserve, no uncertainty buffer.
    Pure,
    /// Algorithm 2*: uncertainty buffer only.
    WithUncertainty,
    /// Algorithm 1: reserve price constraint only.
    WithReserve,
    /// Algorithm 2: reserve price and uncertainty buffer.
    WithReserveAndUncertainty,
}

impl Version {
    /// All four versions in the paper's plotting order.
    pub const ALL: [Version; 4] = [
        Version::Pure,
        Version::WithUncertainty,
        Version::WithReserve,
        Version::WithReserveAndUncertainty,
    ];

    /// The paper's label for this version.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Version::Pure => "pure version",
            Version::WithUncertainty => "with uncertainty",
            Version::WithReserve => "with reserve price",
            Version::WithReserveAndUncertainty => "with reserve price and uncertainty",
        }
    }

    /// Whether this version honours the reserve price.
    #[must_use]
    pub fn uses_reserve(self) -> bool {
        matches!(
            self,
            Version::WithReserve | Version::WithReserveAndUncertainty
        )
    }

    /// Whether this version uses the δ buffer (and noisy market values).
    #[must_use]
    pub fn uses_uncertainty(self) -> bool {
        matches!(
            self,
            Version::WithUncertainty | Version::WithReserveAndUncertainty
        )
    }
}

/// Runs one version of the mechanism on the configured market and returns
/// the simulation outcome.
#[must_use]
pub fn run_version(config: &LinearMarketConfig, version: Version) -> SimulationOutcome {
    let env = build_environment(config, version.uses_uncertainty());
    let mut pricing_config =
        PricingConfig::for_environment(&env, config.rounds).with_reserve(version.uses_reserve());
    if version.uses_uncertainty() {
        pricing_config = pricing_config.with_uncertainty(config.delta);
    }
    // The paper's evaluation fixes ε to ln²T/T (n = 1) or n²/T regardless of
    // δ (Section V-A), i.e. without the 4nδ floor the analysis assumes, so
    // the benchmark reproduces that exact setting.
    let t = config.rounds.max(2) as f64;
    let paper_epsilon = if config.dim <= 1 {
        t.ln() * t.ln() / t
    } else {
        (config.dim * config.dim) as f64 / t
    };
    pricing_config = pricing_config.with_epsilon(paper_epsilon);
    let mechanism = EllipsoidPricing::new(LinearModel::new(config.dim), pricing_config);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    Simulation::new(env, mechanism).run(&mut rng)
}

/// Runs the risk-averse baseline (always post the reserve price) on the same
/// market.
#[must_use]
pub fn run_reserve_baseline(config: &LinearMarketConfig) -> SimulationOutcome {
    let env = build_environment(config, false);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    Simulation::new(env, ReservePriceBaseline::new()).run(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LinearMarketConfig {
        LinearMarketConfig {
            dim: 8,
            rounds: 400,
            num_owners: 120,
            delta: 0.01,
            seed: 3,
        }
    }

    #[test]
    fn paper_horizons_match_fig4() {
        assert_eq!(LinearMarketConfig::paper_horizon(1), 100);
        assert_eq!(LinearMarketConfig::paper_horizon(20), 10_000);
        assert_eq!(LinearMarketConfig::paper_horizon(40), 10_000);
        assert_eq!(LinearMarketConfig::paper_horizon(60), 100_000);
        assert_eq!(LinearMarketConfig::paper_horizon(100), 100_000);
    }

    #[test]
    fn all_four_versions_run_and_reserve_helps() {
        let config = small_config();
        let pure = run_version(&config, Version::Pure);
        let with_reserve = run_version(&config, Version::WithReserve);
        assert_eq!(pure.report.rounds, config.rounds);
        assert_eq!(with_reserve.report.rounds, config.rounds);
        // Qualitative Fig. 4 claim: the reserve version does not do worse.
        assert!(
            with_reserve.cumulative_regret() <= pure.cumulative_regret() * 1.1,
            "reserve {} vs pure {}",
            with_reserve.cumulative_regret(),
            pure.cumulative_regret()
        );
    }

    #[test]
    fn mechanism_beats_risk_averse_baseline() {
        let config = small_config();
        let ours = run_version(&config, Version::WithReserve);
        let baseline = run_reserve_baseline(&config);
        assert!(ours.regret_ratio() < baseline.regret_ratio());
    }

    #[test]
    fn version_labels_and_flags() {
        assert!(Version::WithReserveAndUncertainty.uses_reserve());
        assert!(Version::WithReserveAndUncertainty.uses_uncertainty());
        assert!(!Version::Pure.uses_reserve());
        assert!(!Version::Pure.uses_uncertainty());
        assert_eq!(Version::ALL.len(), 4);
        assert_eq!(Version::WithReserve.label(), "with reserve price");
    }
}
