//! Minimal fixed-width table printing for the experiment binaries.

/// Renders a table with a header row, returning the formatted string.
#[must_use]
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let width = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:<width$}  "));
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a ratio as a percentage with two decimals.
#[must_use]
pub fn pct(value: f64) -> String {
    format!("{:.2}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let out = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.0777), "7.77%");
    }
}
