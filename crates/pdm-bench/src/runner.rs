//! The parallel experiment runner and the aggregation of repeated runs.
//!
//! [`run_jobs`] executes a flat [`Job`] list across a `std::thread::scope`
//! worker pool.  Workers pull job indices from a shared atomic counter and
//! write each result into its own pre-allocated slot, so the returned vector
//! is in job order no matter which worker finished what when — combined with
//! the per-job seeding of [`crate::grid`], the *deterministic* half of every
//! aggregate is bit-identical for 1 worker and for N.
//!
//! [`aggregate_cell`] folds the repetitions of one grid cell into
//! mean / sample-std / 95 %-CI summaries ([`AggStat`]) plus the throughput
//! and latency figures ([`CellPerf`]).  Wall-clock derived numbers are kept
//! strictly apart from the deterministic aggregates: they live in
//! [`CellAggregate::perf`] and are excluded from the determinism fingerprint
//! (see [`crate::report`]).

use crate::grid::{Checkpoint, Job};
use pdm_linalg::{mean, sample_std};
use pdm_pricing::prelude::SimulationOutcome;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One executed job: the simulation outcome plus its wall-clock cost.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The outcome of the simulation.
    pub outcome: SimulationOutcome,
    /// Wall-clock seconds this job took on its worker.
    pub wall_clock_secs: f64,
}

/// Executes every job across `workers` OS threads, returning results in job
/// order.
///
/// Each job is fully self-contained (its spec carries its own seeds), so the
/// execution schedule cannot affect any outcome.  Jobs whose specs are
/// identical (the `all` grid's `table1` cells repeat `fig4`'s with-reserve
/// cells, for example) run once: later duplicates reuse the first job's
/// result, including its wall clock — the same workload has the same perf
/// profile.  `workers` is clamped to `[1, jobs.len()]`.
///
/// # Panics
/// Propagates a panic from any job (the scope joins all workers first).
#[must_use]
pub fn run_jobs(jobs: &[Job], workers: usize) -> Vec<JobResult> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // canonical[i] is the index of the first job with an identical spec
    // (i itself when unique).  O(n²) scan over at most a few hundred jobs.
    let canonical: Vec<usize> = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            jobs[..i]
                .iter()
                .position(|other| other.spec == job.spec)
                .unwrap_or(i)
        })
        .collect();

    let workers = workers.clamp(1, jobs.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else { break };
                if canonical[index] != index {
                    continue;
                }
                let start = Instant::now();
                let outcome = job.spec.run();
                let result = JobResult {
                    outcome,
                    wall_clock_secs: start.elapsed().as_secs_f64(),
                };
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    let mut executed: Vec<Option<JobResult>> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned"))
        .collect();
    let mut results: Vec<JobResult> = Vec::with_capacity(jobs.len());
    for (index, &first) in canonical.iter().enumerate() {
        let result = if first == index {
            executed[index]
                .take()
                .expect("every canonical job was claimed and executed")
        } else {
            // The canonical index is always smaller, so it is already final.
            results[first].clone()
        };
        results.push(result);
    }
    results
}

/// Mean / spread summary of one scalar across repetitions.
///
/// `std` is the sample standard deviation and `ci95_half` the half-width of
/// the normal-approximation 95 % confidence interval (`1.96 · std / √reps`);
/// both are zero for a single repetition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggStat {
    /// Mean across repetitions.
    pub mean: f64,
    /// Sample standard deviation across repetitions.
    pub std: f64,
    /// Half-width of the 95 % confidence interval around the mean.
    pub ci95_half: f64,
    /// Smallest repetition value.
    pub min: f64,
    /// Largest repetition value.
    pub max: f64,
}

impl AggStat {
    /// Summarises the values in repetition order (deterministic fold).
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                mean: f64::NAN,
                std: f64::NAN,
                ci95_half: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
            };
        }
        let std = sample_std(values);
        Self {
            mean: mean(values),
            std,
            ci95_half: 1.96 * std / (values.len() as f64).sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// A plain mean/std pair (per-round statistics averaged over repetitions,
/// for the Table-I columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Mean of the per-round statistic.
    pub mean: f64,
    /// Population standard deviation of the per-round statistic.
    pub std: f64,
}

/// One aggregated checkpoint of the cumulative-regret curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointAggregate {
    /// Round index the checkpoint resolved to.
    pub round: usize,
    /// Cumulative regret at the checkpoint, across repetitions.
    pub cumulative_regret: AggStat,
    /// Regret ratio at the checkpoint, across repetitions.
    pub regret_ratio: AggStat,
}

/// Throughput and latency figures for one cell (wall-clock derived, **not**
/// part of the determinism fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct CellPerf {
    /// Total wall-clock seconds across the cell's repetitions.
    pub wall_clock_secs: f64,
    /// Simulated rounds per wall-clock second (all repetitions pooled).
    pub rounds_per_sec: f64,
    /// Mean per-round latency in µs (averaged over repetitions).
    pub latency_mean_micros: f64,
    /// Median per-round latency in µs (averaged over repetitions; NaN when
    /// the workload bypasses the instrumented simulation loop).
    pub latency_p50_micros: f64,
    /// p99 per-round latency in µs (averaged over repetitions).
    pub latency_p99_micros: f64,
    /// Worst single-round latency in µs across all repetitions.
    pub latency_max_micros: f64,
    /// Largest knowledge-set memory footprint across repetitions, in bytes.
    pub memory_bytes: usize,
}

/// Everything the report records about one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAggregate {
    /// Row label (from the cell spec).
    pub label: String,
    /// The mechanism's self-reported name (from the first repetition).
    pub mechanism_name: String,
    /// Number of repetitions aggregated.
    pub reps: u64,
    /// Rounds per repetition (from the first repetition).
    pub rounds: usize,
    /// Final cumulative regret across repetitions.
    pub cumulative_regret: AggStat,
    /// Final regret ratio across repetitions.
    pub regret_ratio: AggStat,
    /// Final cumulative revenue across repetitions.
    pub revenue: AggStat,
    /// Acceptance rate across repetitions.
    pub acceptance_rate: AggStat,
    /// Per-round market value (Table I column), averaged over repetitions.
    pub market_value_per_round: MeanStd,
    /// Per-round reserve price (Table I column).
    pub reserve_price_per_round: MeanStd,
    /// Per-round posted price (Table I column).
    pub posted_price_per_round: MeanStd,
    /// Per-round regret (Table I column).
    pub regret_per_round: MeanStd,
    /// Aggregated regret-curve checkpoints.
    pub checkpoints: Vec<CheckpointAggregate>,
    /// Wall-clock derived throughput/latency figures.
    pub perf: CellPerf,
}

/// Folds the repetitions of one cell into a [`CellAggregate`].
///
/// `results` must hold the cell's repetitions in repetition order; the
/// checkpoints are resolved against the first repetition's realised horizon.
///
/// # Panics
/// Panics when `results` is empty.
#[must_use]
pub fn aggregate_cell(
    label: &str,
    checkpoints: &[Checkpoint],
    results: &[&JobResult],
) -> CellAggregate {
    assert!(!results.is_empty(), "a cell needs at least one repetition");
    let outcomes: Vec<&SimulationOutcome> = results.iter().map(|r| &r.outcome).collect();
    let first = outcomes[0];
    let rounds = first.report.rounds;

    let stat = |f: &dyn Fn(&SimulationOutcome) -> f64| {
        AggStat::from_values(&outcomes.iter().map(|o| f(o)).collect::<Vec<f64>>())
    };
    let mean_over = |f: &dyn Fn(&SimulationOutcome) -> f64| {
        mean(&outcomes.iter().map(|o| f(o)).collect::<Vec<f64>>())
    };

    let checkpoint_aggregates = checkpoints
        .iter()
        .map(|cp| {
            let round = cp.resolve(rounds);
            CheckpointAggregate {
                round,
                cumulative_regret: stat(&|o| {
                    o.trace_at(round).map_or(f64::NAN, |s| s.cumulative_regret)
                }),
                regret_ratio: stat(&|o| o.trace_at(round).map_or(f64::NAN, |s| s.regret_ratio)),
            }
        })
        .collect();

    let wall_clock_secs: f64 = results.iter().map(|r| r.wall_clock_secs).sum();
    let total_rounds: usize = outcomes.iter().map(|o| o.report.rounds).sum();
    let perf = CellPerf {
        wall_clock_secs,
        rounds_per_sec: if wall_clock_secs > 0.0 {
            total_rounds as f64 / wall_clock_secs
        } else {
            f64::NAN
        },
        latency_mean_micros: mean_over(&|o| o.round_latency_micros.mean()),
        latency_p50_micros: mean_over(&|o| o.round_latency_p50_micros),
        latency_p99_micros: mean_over(&|o| o.round_latency_p99_micros),
        // An empty latency accumulator (Lemma-8 jobs bypass the simulation
        // loop) reports max = -inf; normalise to NaN like the percentiles so
        // the JSON schema round-trips (non-finite encodes as null → NaN).
        latency_max_micros: {
            let max = outcomes
                .iter()
                .map(|o| o.round_latency_micros.max())
                .fold(f64::NEG_INFINITY, f64::max);
            if max.is_finite() {
                max
            } else {
                f64::NAN
            }
        },
        memory_bytes: outcomes
            .iter()
            .map(|o| o.memory_footprint_bytes)
            .max()
            .unwrap_or(0),
    };

    CellAggregate {
        label: label.to_owned(),
        mechanism_name: first.mechanism_name.clone(),
        reps: results.len() as u64,
        rounds,
        cumulative_regret: stat(&|o| o.report.cumulative_regret),
        regret_ratio: stat(&|o| o.report.regret_ratio()),
        revenue: stat(&|o| o.report.cumulative_revenue),
        acceptance_rate: stat(&|o| o.report.acceptance_rate()),
        market_value_per_round: MeanStd {
            mean: mean_over(&|o| o.report.market_value_stats.mean()),
            std: mean_over(&|o| o.report.market_value_stats.population_std()),
        },
        reserve_price_per_round: MeanStd {
            mean: mean_over(&|o| o.report.reserve_price_stats.mean()),
            std: mean_over(&|o| o.report.reserve_price_stats.population_std()),
        },
        posted_price_per_round: MeanStd {
            mean: mean_over(&|o| o.report.posted_price_stats.mean()),
            std: mean_over(&|o| o.report.posted_price_stats.population_std()),
        },
        regret_per_round: MeanStd {
            mean: mean_over(&|o| o.report.regret_stats.mean()),
            std: mean_over(&|o| o.report.regret_stats.population_std()),
        },
        checkpoints: checkpoint_aggregates,
        perf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{expand_jobs, CellSpec, JobSpec};

    fn tiny_grid() -> Vec<Vec<CellSpec>> {
        vec![vec![
            CellSpec::new(
                "correct",
                JobSpec::Lemma8 {
                    horizon: 40,
                    conservative_cuts: false,
                },
            ),
            CellSpec::new(
                "conservative",
                JobSpec::Lemma8 {
                    horizon: 40,
                    conservative_cuts: true,
                },
            ),
        ]]
    }

    #[test]
    fn worker_counts_do_not_change_outcomes() {
        let jobs = expand_jobs(&tiny_grid(), 2);
        let serial = run_jobs(&jobs, 1);
        let parallel = run_jobs(&jobs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.outcome.report.cumulative_regret,
                b.outcome.report.cumulative_regret
            );
            assert_eq!(a.outcome.mechanism_name, b.outcome.mechanism_name);
        }
    }

    #[test]
    fn duplicate_specs_run_once_and_share_their_result() {
        // Two experiments whose cells carry the identical spec (the `all`
        // grid's table1-vs-fig4 overlap): the duplicate must reuse the first
        // job's result verbatim instead of re-simulating.
        let spec = JobSpec::Synthetic {
            dim: 2,
            rounds: 90,
            env_seed: 21,
            run_seed: 22,
            reserve: Some(true),
            epsilon: None,
            mechanism: crate::grid::SyntheticMechanism::Ellipsoid,
        };
        let grid = vec![
            vec![CellSpec::new("first", spec.clone())],
            vec![CellSpec::new("again", spec)],
        ];
        let jobs = expand_jobs(&grid, 1);
        let results = run_jobs(&jobs, 2);
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].outcome.report.cumulative_regret,
            results[1].outcome.report.cumulative_regret
        );
        // The duplicate inherits the canonical wall clock (same workload,
        // same perf profile) rather than a fresh measurement of zero work.
        assert_eq!(results[0].wall_clock_secs, results[1].wall_clock_secs);
        assert!(results[0].wall_clock_secs > 0.0);
    }

    #[test]
    fn run_jobs_handles_empty_and_oversized_worker_counts() {
        assert!(run_jobs(&[], 8).is_empty());
        let jobs = expand_jobs(&tiny_grid(), 1);
        let results = run_jobs(&jobs, 64);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.wall_clock_secs >= 0.0));
    }

    #[test]
    fn agg_stat_matches_hand_computed_values() {
        let stat = AggStat::from_values(&[1.0, 2.0, 3.0]);
        assert!((stat.mean - 2.0).abs() < 1e-12);
        assert!((stat.std - 1.0).abs() < 1e-12);
        assert!((stat.ci95_half - 1.96 / 3.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(stat.min, 1.0);
        assert_eq!(stat.max, 3.0);

        let single = AggStat::from_values(&[5.0]);
        assert_eq!(single.mean, 5.0);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.ci95_half, 0.0);

        assert!(AggStat::from_values(&[]).mean.is_nan());
    }

    #[test]
    fn aggregate_cell_summarises_repetitions() {
        let grid = vec![vec![CellSpec::new(
            "synthetic",
            JobSpec::Synthetic {
                dim: 2,
                rounds: 120,
                env_seed: 3,
                run_seed: 4,
                reserve: Some(true),
                epsilon: None,
                mechanism: crate::grid::SyntheticMechanism::Ellipsoid,
            },
        )
        .with_checkpoints(vec![Checkpoint::Round(10), Checkpoint::Fraction(1.0)])]];
        let jobs = expand_jobs(&grid, 3);
        let results = run_jobs(&jobs, 2);
        let refs: Vec<&JobResult> = results.iter().collect();
        let cell = aggregate_cell("synthetic", &grid[0][0].checkpoints, &refs);

        assert_eq!(cell.reps, 3);
        assert_eq!(cell.rounds, 120);
        assert!(cell.cumulative_regret.mean.is_finite());
        assert!(cell.cumulative_regret.mean >= 0.0);
        assert!(cell.regret_ratio.mean >= 0.0 && cell.regret_ratio.mean <= 1.0);
        // Three different seeds: the reps should not all coincide.
        assert!(cell.cumulative_regret.std > 0.0);
        assert_eq!(cell.checkpoints.len(), 2);
        assert_eq!(cell.checkpoints[1].round, 120);
        assert!(cell.checkpoints[0].cumulative_regret.mean <= cell.cumulative_regret.max);
        assert!(cell.perf.wall_clock_secs > 0.0);
        assert!(cell.perf.rounds_per_sec > 0.0);
        assert!(cell.perf.latency_p99_micros >= cell.perf.latency_p50_micros);
    }
}
