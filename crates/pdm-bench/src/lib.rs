//! # pdm-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Section V), plus the ablations called out in
//! `DESIGN.md`.  Each experiment is a binary (`cargo run -p pdm-bench
//! --release --bin <name>`); the shared pipelines live here so the binaries,
//! the Criterion benches, and the integration tests all exercise the same
//! code.
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig1` | Fig. 1 — single-round regret shape |
//! | `fig4` | Fig. 4(a)–(f) — cumulative regret, noisy linear query |
//! | `fig5a` | Fig. 5(a) — regret ratios at n = 100 + risk-averse baseline |
//! | `fig5b` | Fig. 5(b) — accommodation rental, log-linear model |
//! | `fig5c` | Fig. 5(c) — impression pricing, logistic model |
//! | `table1` | Table I — per-round statistics under the reserve version |
//! | `overhead` | Section V-D — per-round latency and memory |
//! | `lemma8` | Lemma 8 / Fig. 6 — conservative-cut ablation |
//! | `regret_scaling` | Theorems 1 & 3 — regret growth in T and n, ε ablation |
//!
//! All of those are thin shims over the **`bench`** binary, which runs any
//! subset of the grid in parallel:
//!
//! ```text
//! cargo run -p pdm-bench --release --bin bench -- all --workers 8 --reps 5 \
//!     --json BENCH_all.json
//! ```
//!
//! Every binary accepts `--full` to run at the paper's scale (the default is
//! a scaled-down configuration that finishes in seconds and preserves the
//! qualitative shape), `--workers`/`--reps` for the parallel runner, and
//! `--json` to write the versioned machine-readable report documented in
//! `docs/BENCHMARKS.md`.  The experiment grid lives in [`experiments`]; the
//! worker pool and aggregation in [`runner`]; the `BENCH_*.json` schema in
//! [`report`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airbnb_pipeline;
pub mod auction;
pub mod avazu_pipeline;
pub mod cli;
pub mod drift;
pub mod experiments;
pub mod grid;
pub mod linear_market;
pub mod longhaul;
pub mod privacy;
pub mod report;
pub mod runner;
pub mod scale;
pub mod serve;
pub mod table;

/// The deterministic JSON tree the `BENCH_*.json` reports serialise through.
///
/// The implementation lives in [`pdm_linalg::json`] (the dependency-free
/// root of the workspace) so that `pdm-service` snapshots can use it without
/// depending on this bench crate; it is re-exported here because the report
/// schema and its consumers historically spell it `pdm_bench::json`.
pub use pdm_linalg::json;

pub use scale::Scale;
