//! Quick vs. paper-scale experiment configuration.

/// Whether an experiment runs at the scaled-down default or at the paper's
/// full scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale configuration preserving the qualitative shape.
    Quick,
    /// The paper's configuration (minutes of runtime for the large figures).
    Full,
}

impl Scale {
    /// Parses the scale from an argument list: `--full` selects
    /// [`Scale::Full`], nothing selects [`Scale::Quick`], and anything else
    /// is an error (a typo like `--ful` must not silently run the wrong
    /// scale for minutes).
    ///
    /// Binaries with a richer flag set ([`crate::cli`]) have their own
    /// strict parser; this one is for callers that only scale.
    pub fn try_from_args<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut scale = Scale::Quick;
        for arg in args {
            match arg.as_ref() {
                "--full" => scale = Scale::Full,
                other => {
                    return Err(format!(
                        "unrecognized argument `{other}`\nusage: <binary> [--full]"
                    ))
                }
            }
        }
        Ok(scale)
    }

    /// Parses the scale from the process arguments, exiting with status 2
    /// and a usage message on anything other than an optional `--full`.
    #[must_use]
    pub fn from_args() -> Self {
        match Self::try_from_args(std::env::args().skip(1)) {
            Ok(scale) => scale,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    }

    /// Picks between the quick and full value of a parameter.
    #[must_use]
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Human-readable label for report headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick scale (pass --full for the paper's scale)",
            Scale::Full => "full paper scale",
        }
    }

    /// Machine-readable name used in the `BENCH_*.json` schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Scale::Quick.label(), Scale::Full.label());
        assert_eq!(Scale::Quick.name(), "quick");
        assert_eq!(Scale::Full.name(), "full");
    }

    #[test]
    fn try_from_args_accepts_only_full() {
        assert_eq!(Scale::try_from_args(Vec::<String>::new()), Ok(Scale::Quick));
        assert_eq!(Scale::try_from_args(["--full"]), Ok(Scale::Full));
        assert_eq!(Scale::try_from_args(["--full", "--full"]), Ok(Scale::Full));
    }

    #[test]
    fn typos_are_an_error_with_usage() {
        let err = Scale::try_from_args(["--ful"]).unwrap_err();
        assert!(err.contains("--ful"));
        assert!(err.contains("usage"));
        assert!(Scale::try_from_args(["--full", "extra"]).is_err());
    }
}
