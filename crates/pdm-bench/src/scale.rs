//! Quick vs. paper-scale experiment configuration.

/// Whether an experiment runs at the scaled-down default or at the paper's
/// full scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale configuration preserving the qualitative shape.
    Quick,
    /// The paper's configuration (minutes of runtime for the large figures).
    Full,
}

impl Scale {
    /// Parses the scale from process arguments (`--full` selects
    /// [`Scale::Full`]).
    #[must_use]
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Picks between the quick and full value of a parameter.
    #[must_use]
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Human-readable label for report headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick scale (pass --full for the paper's scale)",
            Scale::Full => "full paper scale",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Scale::Quick.label(), Scale::Full.label());
    }
}
