//! The accommodation-rental pipeline of Section V-B / Fig. 5(b).
//!
//! 1. Generate Airbnb-style listings (a seeded stand-in for the 74,111-record
//!    dataset).
//! 2. Encode the categorical fields to integer codes (pandas-categoricals
//!    style), standardise, and add interaction features (final dimension 55,
//!    as in the paper).
//! 3. Fit ordinary least squares on the log price; the fitted coefficients
//!    play the role of the ground-truth weight vector θ*.
//! 4. Replay the listings as pricing rounds under the log-linear model,
//!    with the reserve set so that `ln q / ln v` equals a chosen ratio.

use pdm_datasets::{AirbnbGenerator, AirbnbListing, CancellationPolicy, PropertyType, RoomType};
use pdm_learners::{
    train_test_split, CategoricalEncoder, InteractionFeatures, LinearRegression, StandardScaler,
};
use pdm_linalg::Vector;
use pdm_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fitted Airbnb pipeline: encoded rows, targets, and the ground-truth
/// weight vector recovered by OLS.
///
/// Log prices are rescaled so that their mean is 1 before fitting.  The
/// paper's reserve knob is the ratio `ln q / ln v`, and its reported
/// risk-averse-baseline regret ratios (9–23 %) are only attainable when the
/// typical `ln v` is of order one; the rescaling reproduces that working
/// point while leaving the hedonic structure untouched (it only divides every
/// coefficient by a constant).  The substitution is noted in EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct AirbnbPipeline {
    /// Encoded, standardised feature rows (with the trailing intercept
    /// feature `1`).
    pub rows: Vec<Vector>,
    /// Rescaled log-price targets (mean 1).
    pub log_prices: Vec<f64>,
    /// The divisor applied to the raw log prices (their mean).
    pub log_price_scale: f64,
    /// Fitted weights (including the intercept as the last element): the θ*
    /// of the log-linear market value model.
    pub theta_star: Vector,
    /// Held-out mean squared error of the fit, in the rescaled log scale
    /// (the paper reports 0.226 in its scale).
    pub test_mse: f64,
    /// Final feature dimension (the paper's n = 55).
    pub feature_dim: usize,
}

fn property_label(p: PropertyType) -> &'static str {
    match p {
        PropertyType::Apartment => "Apartment",
        PropertyType::House => "House",
        PropertyType::Condo => "Condo",
        PropertyType::Townhouse => "Townhouse",
        PropertyType::Other => "Other",
    }
}

fn room_label(r: RoomType) -> &'static str {
    match r {
        RoomType::EntireHome => "Entire home/apt",
        RoomType::PrivateRoom => "Private room",
        RoomType::SharedRoom => "Shared room",
    }
}

fn policy_label(c: CancellationPolicy) -> &'static str {
    match c {
        CancellationPolicy::Flexible => "flexible",
        CancellationPolicy::Moderate => "moderate",
        CancellationPolicy::Strict => "strict",
    }
}

/// Encodes one listing into its raw (pre-standardisation) numeric row.
fn raw_row(
    listing: &AirbnbListing,
    city_enc: &CategoricalEncoder,
    property_enc: &CategoricalEncoder,
    room_enc: &CategoricalEncoder,
    policy_enc: &CategoricalEncoder,
) -> Vector {
    Vector::from_slice(&[
        city_enc.encode(&listing.city),
        property_enc.encode(property_label(listing.property_type)),
        room_enc.encode(room_label(listing.room_type)),
        policy_enc.encode(policy_label(listing.cancellation_policy)),
        f64::from(listing.accommodates),
        f64::from(listing.bedrooms),
        listing.bathrooms,
        f64::from(listing.beds),
        f64::from(listing.amenities_count),
        listing.review_score,
        listing.host_response_rate,
        f64::from(u8::from(listing.superhost)),
    ])
}

impl AirbnbPipeline {
    /// Builds the pipeline from a listing population.
    ///
    /// # Panics
    /// Panics when fewer than ten listings are provided (the regression needs
    /// a minimal sample).
    #[must_use]
    pub fn build(listings: &[AirbnbListing], seed: u64) -> Self {
        assert!(listings.len() >= 10, "need at least ten listings");
        // Fit the categorical encoders.
        let mut city_enc = CategoricalEncoder::new();
        city_enc.fit(&listings.iter().map(|l| l.city.clone()).collect::<Vec<_>>());
        let mut property_enc = CategoricalEncoder::new();
        property_enc.fit(
            &listings
                .iter()
                .map(|l| property_label(l.property_type).to_owned())
                .collect::<Vec<_>>(),
        );
        let mut room_enc = CategoricalEncoder::new();
        room_enc.fit(
            &listings
                .iter()
                .map(|l| room_label(l.room_type).to_owned())
                .collect::<Vec<_>>(),
        );
        let mut policy_enc = CategoricalEncoder::new();
        policy_enc.fit(
            &listings
                .iter()
                .map(|l| policy_label(l.cancellation_policy).to_owned())
                .collect::<Vec<_>>(),
        );

        // Raw rows (pandas-style codes and numeric columns), standardised so
        // no single column dominates the regression, then interaction
        // features.
        let raw: Vec<Vector> = listings
            .iter()
            .map(|l| raw_row(l, &city_enc, &property_enc, &room_enc, &policy_enc))
            .collect();
        let scaler = StandardScaler::fit(&raw).expect("non-empty, rectangular design");
        let raw = scaler.transform_all(&raw);
        // Interactions among the nine core columns (36 products) bring the
        // dimension from 12 + intercept to the paper's 55: 12 + 36 + 1 = 49;
        // adding the room×remaining-columns pairs reaches 55 exactly.
        let mut pairs = Vec::new();
        for a in 0..9usize {
            for b in (a + 1)..9usize {
                pairs.push((a, b));
            }
        }
        for b in 9..12usize {
            pairs.push((2, b));
            pairs.push((4, b));
        }
        let interactions = InteractionFeatures::new(pairs);
        let rows: Vec<Vector> = raw
            .iter()
            .map(|row| {
                let with_interactions = interactions.transform(row);
                // Trailing intercept feature so the linear-in-features model
                // can carry the fitted intercept.
                with_interactions.concat(&Vector::ones(1))
            })
            .collect();
        let raw_log_prices: Vec<f64> = listings.iter().map(|l| l.log_price).collect();
        let log_price_scale = raw_log_prices.iter().sum::<f64>() / raw_log_prices.len() as f64;
        let log_prices: Vec<f64> = raw_log_prices.iter().map(|v| v / log_price_scale).collect();
        let feature_dim = rows[0].len();

        // 80/20 split, fit OLS on the training part, evaluate on the holdout.
        let mut rng = StdRng::seed_from_u64(seed);
        let (train_idx, test_idx) = train_test_split(&mut rng, rows.len(), 0.2);
        let train_rows: Vec<Vector> = train_idx.iter().map(|&i| rows[i].clone()).collect();
        let train_targets: Vec<f64> = train_idx.iter().map(|&i| log_prices[i]).collect();
        let test_rows: Vec<Vector> = test_idx.iter().map(|&i| rows[i].clone()).collect();
        let test_targets: Vec<f64> = test_idx.iter().map(|&i| log_prices[i]).collect();
        // The intercept is carried by the trailing constant feature, so the
        // regression itself is fit without a separate intercept.  The raw
        // (unscaled) interaction columns are mildly collinear, so a small
        // ridge keeps the normal equations well conditioned.
        let model = LinearRegression::fit(&train_rows, &train_targets, false, 1e-3)
            .expect("ridge keeps the raw design well conditioned");
        let test_mse = model.mse(&test_rows, &test_targets);

        Self {
            rows,
            log_prices,
            log_price_scale,
            theta_star: model.weights().clone(),
            test_mse,
            feature_dim,
        }
    }

    /// Builds the pricing rounds for a given `ln q / ln v` ratio (`None`
    /// disables the reserve, the "pure version" series of Fig. 5(b)).
    ///
    /// The market value of each listing is the fitted hedonic value
    /// `exp(x^T θ*)`, as in the paper (the fitted coefficients *are* the
    /// market value model).
    #[must_use]
    pub fn rounds(&self, log_ratio: Option<f64>) -> Vec<Round> {
        self.rows
            .iter()
            .map(|row| {
                let link_value = row
                    .dot(&self.theta_star)
                    .expect("rows and weights share the dimension");
                let market_value = link_value.exp();
                let reserve_price = match log_ratio {
                    Some(ratio) => (ratio * link_value).exp(),
                    None => 0.0,
                };
                Round {
                    features: row.clone(),
                    reserve_price,
                    market_value,
                }
            })
            .collect()
    }

    /// Wraps the rounds into a replay environment with appropriate broker
    /// priors.
    #[must_use]
    pub fn environment(&self, log_ratio: Option<f64>) -> ReplayEnvironment {
        let rounds = self.rounds(log_ratio);
        let weight_bound = 2.0 * self.theta_star.norm().max(1.0);
        let feature_bound = self.rows.iter().map(Vector::norm).fold(1.0_f64, f64::max);
        ReplayEnvironment::new(rounds, weight_bound, feature_bound)
    }

    /// Runs the ellipsoid mechanism (log-linear model) over the replay.
    #[must_use]
    pub fn run_mechanism(&self, log_ratio: Option<f64>, seed: u64) -> SimulationOutcome {
        let env = self.environment(log_ratio);
        let horizon = env.horizon();
        let config =
            PricingConfig::for_environment(&env, horizon).with_reserve(log_ratio.is_some());
        let mechanism = EllipsoidPricing::new(LogLinearModel::new(self.feature_dim), config);
        let mut rng = StdRng::seed_from_u64(seed);
        Simulation::new(env, mechanism).run(&mut rng)
    }

    /// Runs the risk-averse baseline (post the reserve each round).
    #[must_use]
    pub fn run_baseline(&self, log_ratio: f64, seed: u64) -> SimulationOutcome {
        let env = self.environment(Some(log_ratio));
        let mut rng = StdRng::seed_from_u64(seed);
        Simulation::new(env, ReservePriceBaseline::new()).run(&mut rng)
    }
}

/// Generates a listing population and builds the pipeline in one call.
///
/// The inventory is drawn from a small set of listing archetypes (see
/// [`AirbnbGenerator`]); the redundancy mirrors real short-term-rental
/// inventories and is what lets the 55-dimensional knowledge set leave its
/// exploration phase within the paper's 74k-round horizon.
#[must_use]
pub fn default_pipeline(num_listings: usize, seed: u64) -> AirbnbPipeline {
    let listings = AirbnbGenerator::new(num_listings, 0.45)
        .with_prototypes(12)
        .generate(seed);
    AirbnbPipeline::build(&listings, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_reaches_the_papers_dimension_and_fit_quality() {
        let pipeline = default_pipeline(3_000, 11);
        assert_eq!(pipeline.feature_dim, 55, "the paper's n = 55");
        assert_eq!(pipeline.theta_star.len(), 55);
        // Residual noise survives the fit: the planted noise is 0.45 in the
        // raw log scale, i.e. ≈ 0.45 / log_price_scale after rescaling, so
        // the held-out MSE must land near its square.
        let expected = (0.45 / pipeline.log_price_scale).powi(2);
        assert!(
            pipeline.test_mse > 0.3 * expected && pipeline.test_mse < 3.0 * expected,
            "test MSE was {} (expected ≈ {expected})",
            pipeline.test_mse
        );
        assert!(pipeline.log_price_scale > 3.0 && pipeline.log_price_scale < 7.0);
    }

    #[test]
    fn reserve_ratio_controls_the_log_ratio_of_rounds() {
        let pipeline = default_pipeline(500, 3);
        let rounds = pipeline.rounds(Some(0.6));
        for round in rounds.iter().take(50) {
            let ratio = round.reserve_price.ln() / round.market_value.ln();
            assert!((ratio - 0.6).abs() < 1e-9, "ratio was {ratio}");
            assert!(round.reserve_price < round.market_value);
        }
        let pure = pipeline.rounds(None);
        assert!(pure.iter().all(|r| r.reserve_price == 0.0));
    }

    #[test]
    fn mechanism_beats_baseline_on_accommodation_rental() {
        // The paper's headline over 74k rounds: a few percent regret ratio
        // for the mechanism vs 17–23 % for the risk-averse baseline at the
        // lower reserve ratios.  This test runs a mid-sized replay (the fig5b
        // binary runs the full 74,111-listing scale): the mechanism must (a)
        // already beat the ratio-0.4 baseline and (b) show the decisive
        // downward trend in its regret ratio after the exploration phase.
        let pipeline = default_pipeline(20_000, 5);
        let ours = pipeline.run_mechanism(Some(0.4), 1);
        let baseline = pipeline.run_baseline(0.4, 1);
        assert!(
            ours.regret_ratio() < baseline.regret_ratio(),
            "ellipsoid {} vs baseline {}",
            ours.regret_ratio(),
            baseline.regret_ratio()
        );
        let early = ours.trace_at(2_000).map(|s| s.regret_ratio).unwrap_or(1.0);
        assert!(
            ours.regret_ratio() < 0.75 * early,
            "regret ratio must keep falling after exploration ({} vs early {early})",
            ours.regret_ratio()
        );
    }
}
