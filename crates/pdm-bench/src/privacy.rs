//! The `bench privacy` workload: privacy-budget economics at serving
//! scale, where data owners' ε budgets exhaust mid-run and the mechanism
//! must price around the shrinking supply.
//!
//! Every cell spins up a [`MarketService`] of privacy tenants — each
//! carrying a per-owner ε ledger and compensation contract — and pumps a
//! precomputed closed-loop trace through it.  Accepted sales debit every
//! weighted owner's budget, so as the run progresses owners retire
//! (stickily, at quote time), the sellable supply shrinks, and eventually
//! whole tenants refuse to quote (`BudgetExhausted`).  The cell records
//! the economics of that decline:
//!
//! * **Revenue vs. compensation** — every sale accrues tanh-concave
//!   payouts to its participating owners; the shard lifts the reserve to
//!   cover them, so cumulative compensation can never exceed cumulative
//!   revenue (a `--check` gate).
//! * **Exhaustion trajectory** — the cumulative owners-exhausted counter
//!   is sampled after every wave.  Retirement is sticky, so the
//!   trajectory must be monotone non-decreasing and must actually climb
//!   above zero (the grid is sized so budgets bind mid-run); both are
//!   `--check` gates.
//! * **Supply throttling** — once every owner of a tenant retires, its
//!   quotes fail instead of pricing, so the second half of the run must
//!   serve strictly fewer quotes than the first (`quoted_late <
//!   quoted_early` whenever anyone exhausted) — the "budget exhaustion
//!   measurably throttles supply" gate.
//! * **Bit-identical restore with ledgers** — as in the longhaul
//!   workload, a WAL checkpoint is taken every `checkpoint_every` waves,
//!   the service is rebuilt at the halfway cut, and both services replay
//!   the identical second half.  Every posted price, every
//!   budget-exhausted refusal, and the per-wave exhaustion trajectory
//!   must agree bit for bit, and the cut aggregates — including the ε and
//!   compensation totals — must match exactly.
//!
//! [`MarketService`]: pdm_service::MarketService

use crate::grid::derive_seed;
use crate::runner::AggStat;
use crate::table;
use crate::Scale;
use pdm_linalg::{sampling, Json, Vector};
use pdm_service::{
    MarketService, MetricRegistry, OutcomeReport, Payload, PrivacyParams, QueryRequest,
    ServiceConfig, ShardMetrics, TenantConfig, TenantId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Base seed of the privacy grid; each cell derives its traffic trace from
/// `derive_seed(PRIVACY_SEED_BASE + cell_index, rep)`.
const PRIVACY_SEED_BASE: u64 = 0x11E9;

/// Reserve prices are this fraction of the hidden market value (the shard
/// then lifts the effective reserve to cover owner compensation).
const RESERVE_FRACTION: f64 = 0.6;

/// One cell of the privacy grid: a population of privacy tenants whose
/// owners share one ε budget level, under a closed-loop trace with
/// periodic WAL checkpoints and a mid-run restore.
#[derive(Debug, Clone)]
pub struct PrivacyCellSpec {
    /// Row label, e.g. `budget=1.5/owners=4`.
    pub label: String,
    /// Number of registered privacy tenants.
    pub tenants: usize,
    /// Data owners per tenant — the feature dimension of every query.
    pub owners: usize,
    /// Shard count of the service.
    pub shards: usize,
    /// Closed-loop waves to pump (the restore cut falls at the midpoint).
    pub waves: usize,
    /// Per-owner ε budget — sized so owners exhaust mid-run.
    pub epsilon_budget: f64,
    /// Base payout of the tanh compensation contract.
    pub compensation_base: f64,
    /// Tenant records per WAL segment.
    pub wal_segment_size: usize,
    /// A WAL checkpoint is taken every this many waves.
    pub checkpoint_every: usize,
    /// Base seed of the cell's traffic trace.
    pub seed: u64,
}

/// Wall-clock figures of one privacy cell (excluded from the determinism
/// fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyPerf {
    /// End-to-end seconds for the cell (trace + both runs + verify).
    pub wall_clock_secs: f64,
    /// Quotes served per second of drain time on the original service.
    pub quotes_per_sec: f64,
    /// Mean µs for one [`restore_with_wal`] rebuild (base + segments).
    ///
    /// [`restore_with_wal`]: pdm_service::MarketService::restore_with_wal
    pub restore_latency_micros: f64,
}

/// Everything the BENCH v7 report records about one privacy cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyCellReport {
    /// Row label (from the cell spec).
    pub label: String,
    /// Registered privacy tenants.
    pub tenants: u64,
    /// Service shard count.
    pub shards: u64,
    /// Closed-loop waves per repetition.
    pub waves: u64,
    /// Repetitions aggregated.
    pub reps: u64,
    /// Worker threads each drain ran on.
    pub workers: u64,
    /// Data owners per tenant.
    pub owners: u64,
    /// The per-owner ε budget of the cell.
    pub epsilon_budget: f64,
    /// Quote requests submitted, summed over repetitions.
    pub requests: u64,
    /// Quotes actually served (not throttled), summed over repetitions.
    pub quotes_served: u64,
    /// Outcome reports applied, summed over repetitions.
    pub observations: u64,
    /// Accepted quotes, summed over repetitions.
    pub sales: u64,
    /// Quote requests refused because every weighted owner had exhausted
    /// her budget, summed over repetitions.
    pub throttled: u64,
    /// Posted prices clamped by the arbitrage-free band, summed over reps.
    pub arbitrage_clamps: u64,
    /// Owners retired by the end of the run, summed over repetitions.
    pub owners_exhausted: u64,
    /// WAL segments written, summed over repetitions.
    pub wal_segments: u64,
    /// Quotes served in the first half of the trace, summed over reps.
    pub quoted_early: u64,
    /// Quotes served in the second half — strictly fewer than
    /// `quoted_early` once exhaustion starts throttling supply.
    pub quoted_late: u64,
    /// Cumulative owners-exhausted after each wave, summed element-wise
    /// over repetitions: monotone non-decreasing by construction (sticky
    /// retirement), gated in `validate()`.
    pub exhausted_trajectory: Vec<u64>,
    /// Cumulative revenue per repetition.
    pub revenue: AggStat,
    /// Cumulative owner compensation per repetition (never above revenue).
    pub compensation: AggStat,
    /// Cumulative ε disclosed across all owners per repetition.
    pub epsilon_spent: AggStat,
    /// Acceptance rate per repetition.
    pub accept_rate: AggStat,
    /// Wall-clock throughput/latency figures.
    pub perf: PrivacyPerf,
}

/// The privacy grid at the given scale: one tenant population under two ε
/// budget levels (tight and looser), both sized to bind before the run
/// ends so the supply-throttling gates have something to measure.
#[must_use]
pub fn privacy_grid(scale: Scale) -> Vec<PrivacyCellSpec> {
    let tenants = scale.pick(6usize, 16);
    let owners = scale.pick(4usize, 8);
    let shards = scale.pick(2usize, 4);
    let waves = scale.pick(24usize, 64);
    let budgets = scale.pick(vec![1.5f64, 3.0], vec![3.0, 6.0]);
    let wal_segment_size = scale.pick(4usize, 16);
    let checkpoint_every = scale.pick(4usize, 8);
    budgets
        .into_iter()
        .enumerate()
        .map(|(index, budget)| PrivacyCellSpec {
            label: format!("budget={budget}/owners={owners}"),
            tenants,
            owners,
            shards,
            waves,
            epsilon_budget: budget,
            compensation_base: 0.05,
            wal_segment_size,
            checkpoint_every,
            seed: PRIVACY_SEED_BASE + index as u64,
        })
        .collect()
}

/// One precomputed request of the traffic trace.
struct TraceRequest {
    tenant: u64,
    features: Vector,
    value: f64,
    reserve: f64,
}

/// The per-repetition outcome handed to the aggregator.
struct RepOutcome {
    metrics: ShardMetrics,
    quoted_early: u64,
    trajectory: Vec<u64>,
    wal_segments: u64,
    restore_latency: Duration,
    drain_time: Duration,
    /// The *original* service's final `pdm-obs` scrape (the restored twin
    /// replays the same second half, so folding both would double-count the
    /// post-cut traffic).
    scrape: MetricRegistry,
}

/// Precomputes the full trace: one query per tenant per wave, drawn from
/// per-tenant streams so the identical requests can replay against the
/// original service and the restored one.
fn build_trace(
    spec: &PrivacyCellSpec,
    traffic_seed: u64,
) -> Result<Vec<Vec<TraceRequest>>, String> {
    let mut streams: Vec<StdRng> = Vec::with_capacity(spec.tenants);
    let mut thetas: Vec<Vector> = Vec::with_capacity(spec.tenants);
    for id in 0..spec.tenants as u64 {
        let mut rng = StdRng::seed_from_u64(derive_seed(traffic_seed, id.wrapping_add(1)));
        thetas.push(
            sampling::unit_sphere(&mut rng, spec.owners)
                .map(f64::abs)
                .normalized(),
        );
        streams.push(rng);
    }
    let mut trace = Vec::with_capacity(spec.waves);
    for _ in 0..spec.waves {
        let mut requests = Vec::with_capacity(spec.tenants);
        for id in 0..spec.tenants as u64 {
            let rng = &mut streams[id as usize];
            let features = sampling::standard_normal_vector(rng, spec.owners)
                .map(f64::abs)
                .normalized();
            let value = thetas[id as usize]
                .dot(&features)
                .map_err(|e| format!("{}: dot: {e}", spec.label))?;
            requests.push(TraceRequest {
                tenant: id,
                features,
                value,
                reserve: RESERVE_FRACTION * value,
            });
        }
        trace.push(requests);
    }
    Ok(trace)
}

/// Builds the cell's service and registers its privacy tenants.
fn build_service(spec: &PrivacyCellSpec) -> Result<MarketService, String> {
    let mut service = MarketService::new(ServiceConfig {
        shards: spec.shards,
        queue_capacity: spec.tenants.max(4),
        wal_segment_size: Some(spec.wal_segment_size),
        ..ServiceConfig::default()
    })
    .map_err(|e| format!("{}: config: {e}", spec.label))?;
    let params = PrivacyParams {
        epsilon_budget: spec.epsilon_budget,
        compensation_base: spec.compensation_base,
        ..PrivacyParams::default()
    };
    let config = TenantConfig::privacy(spec.owners, spec.waves, params);
    for id in 0..spec.tenants as u64 {
        service
            .register_tenant(TenantId(id), config)
            .map_err(|e| format!("{}: register: {e}", spec.label))?;
    }
    Ok(service)
}

/// Replays `waves` of the trace against `service`.  Served quotes push
/// their posted-price bits; budget-exhausted refusals push a `u64::MAX`
/// sentinel — both must reproduce exactly on a restored service.  After
/// each wave the cumulative owners-exhausted counter is appended to
/// `trajectory`.  Returns the accumulated drain time.
fn run_waves(
    label: &str,
    service: &mut MarketService,
    trace: &[Vec<TraceRequest>],
    workers: usize,
    bits: &mut Vec<(u64, u64)>,
    trajectory: &mut Vec<u64>,
) -> Result<Duration, String> {
    let mut drain_time = Duration::ZERO;
    let mut responses = Vec::new();
    for requests in trace {
        for request in requests {
            service
                .submit_quote(QueryRequest {
                    tenant: TenantId(request.tenant),
                    features: request.features.clone(),
                    reserve_price: request.reserve,
                })
                .map_err(|e| format!("{label}: submit: {e}"))?;
        }
        responses.clear();
        let started = Instant::now();
        service.drain_into(workers, &mut responses);
        drain_time += started.elapsed();
        for response in &responses {
            match &response.payload {
                Payload::Quoted(quote) => {
                    let request = requests
                        .iter()
                        .find(|r| r.tenant == response.tenant.0)
                        .ok_or_else(|| format!("{label}: response without a request"))?;
                    bits.push((response.tenant.0, quote.posted_price.to_bits()));
                    service
                        .submit_outcome(OutcomeReport {
                            tenant: response.tenant,
                            accepted: quote.posted_price <= request.value,
                            market_value: Some(request.value),
                        })
                        .map_err(|e| format!("{label}: outcome: {e}"))?;
                }
                Payload::Failed(_) => bits.push((response.tenant.0, u64::MAX)),
                other => {
                    return Err(format!(
                        "{label}: privacy tenants only quote or throttle, got {other:?}"
                    ))
                }
            }
        }
        responses.clear();
        let started = Instant::now();
        service.drain_into(workers, &mut responses);
        drain_time += started.elapsed();
        trajectory.push(service.aggregate_metrics().owners_exhausted);
    }
    Ok(drain_time)
}

/// Runs one repetition of one cell: first half with checkpoints under
/// traffic, the timed restore at the cut, then the identical second half
/// on both services with bit-for-bit comparison — prices, refusals, the
/// exhaustion trajectory, and the ε/compensation ledger totals.
fn run_rep(spec: &PrivacyCellSpec, workers: usize, rep: u64) -> Result<RepOutcome, String> {
    let trace = build_trace(spec, derive_seed(spec.seed, rep))?;
    let cut = spec.waves / 2;

    let mut original = build_service(spec)?;
    let base = original
        .snapshot()
        .map_err(|e| format!("{}: base snapshot: {e}", spec.label))?;
    let mut stream: Vec<Json> = Vec::new();
    let mut drain_time = Duration::ZERO;
    let mut pre_cut_bits = Vec::new();
    let mut trajectory = Vec::with_capacity(spec.waves);
    for (wave, requests) in trace[..cut].iter().enumerate() {
        drain_time += run_waves(
            &spec.label,
            &mut original,
            std::slice::from_ref(requests),
            workers,
            &mut pre_cut_bits,
            &mut trajectory,
        )?;
        if (wave + 1) % spec.checkpoint_every == 0 {
            stream.extend(
                original
                    .checkpoint()
                    .map_err(|e| format!("{}: checkpoint: {e}", spec.label))?,
            );
        }
    }
    stream.extend(
        original
            .checkpoint()
            .map_err(|e| format!("{}: cut checkpoint: {e}", spec.label))?,
    );

    let restore_started = Instant::now();
    let mut restored = MarketService::restore_with_wal(&base, &stream)
        .map_err(|e| format!("{}: restore: {e}", spec.label))?;
    let restore_latency = restore_started.elapsed();

    // The restored service must agree with the original on everything the
    // ledgers promise to carry: the pricing counters AND the privacy
    // economics — ε spent, compensation accrued, owners retired.
    let original_cut = original.aggregate_metrics();
    let restored_cut = restored.aggregate_metrics();
    if restored_cut.quotes_served != original_cut.quotes_served
        || restored_cut.sales != original_cut.sales
        || restored_cut.revenue.to_bits() != original_cut.revenue.to_bits()
        || restored_cut.epsilon_spent.to_bits() != original_cut.epsilon_spent.to_bits()
        || restored_cut.compensation_paid.to_bits() != original_cut.compensation_paid.to_bits()
        || restored_cut.owners_exhausted != original_cut.owners_exhausted
        || restored_cut.privacy_throttled != original_cut.privacy_throttled
    {
        return Err(format!(
            "{}: the WAL restore lost ledger state at the cut (ε {} vs {}, compensation \
             {} vs {}, exhausted {} vs {})",
            spec.label,
            restored_cut.epsilon_spent,
            original_cut.epsilon_spent,
            restored_cut.compensation_paid,
            original_cut.compensation_paid,
            restored_cut.owners_exhausted,
            original_cut.owners_exhausted,
        ));
    }
    let quoted_early = original_cut.quotes_served;

    // Second half: the identical trace against both services.
    let mut expected = Vec::new();
    drain_time += run_waves(
        &spec.label,
        &mut original,
        &trace[cut..],
        workers,
        &mut expected,
        &mut trajectory,
    )?;
    let mut actual = Vec::new();
    let mut restored_trajectory = Vec::with_capacity(spec.waves - cut);
    run_waves(
        &spec.label,
        &mut restored,
        &trace[cut..],
        workers,
        &mut actual,
        &mut restored_trajectory,
    )?;
    if expected != actual {
        return Err(format!(
            "{}: the restored service diverged from the original over the post-cut trace \
             — ledger restore is not bit-identical",
            spec.label
        ));
    }
    if trajectory[cut..] != restored_trajectory[..] {
        return Err(format!(
            "{}: the restored service's exhaustion trajectory diverged from the original",
            spec.label
        ));
    }

    Ok(RepOutcome {
        metrics: original.aggregate_metrics(),
        quoted_early,
        trajectory,
        wal_segments: original.wal_segments_written(),
        restore_latency,
        drain_time,
        scrape: original.scrape(),
    })
}

/// Runs one cell (all repetitions) and aggregates it into a report row,
/// folding every repetition's final original-service scrape into `obs`.
pub fn run_privacy_cell_obs(
    spec: &PrivacyCellSpec,
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<PrivacyCellReport, String> {
    let started = Instant::now();
    let reps = reps.max(1);
    let mut revenue = Vec::with_capacity(reps as usize);
    let mut compensation = Vec::with_capacity(reps as usize);
    let mut epsilon = Vec::with_capacity(reps as usize);
    let mut accept_rate = Vec::with_capacity(reps as usize);
    let mut metrics = ShardMetrics::new();
    let mut quoted_early = 0u64;
    let mut wal_segments = 0u64;
    let mut trajectory = vec![0u64; spec.waves];
    let mut restore_time = Duration::ZERO;
    let mut drain_time = Duration::ZERO;
    for rep in 0..reps {
        let outcome = run_rep(spec, workers, rep)?;
        revenue.push(outcome.metrics.revenue);
        compensation.push(outcome.metrics.compensation_paid);
        epsilon.push(outcome.metrics.epsilon_spent);
        accept_rate.push(outcome.metrics.accept_rate());
        metrics.merge(&outcome.metrics);
        quoted_early += outcome.quoted_early;
        wal_segments += outcome.wal_segments;
        for (slot, sample) in trajectory.iter_mut().zip(&outcome.trajectory) {
            *slot += sample;
        }
        restore_time += outcome.restore_latency;
        drain_time += outcome.drain_time;
        obs.merge(&outcome.scrape);
    }
    let drain_secs = drain_time.as_secs_f64();
    let quotes_per_sec = if drain_secs > 0.0 {
        metrics.quotes_served as f64 / drain_secs
    } else {
        0.0
    };
    Ok(PrivacyCellReport {
        label: spec.label.clone(),
        tenants: spec.tenants as u64,
        shards: spec.shards as u64,
        waves: spec.waves as u64,
        reps,
        workers: workers as u64,
        owners: spec.owners as u64,
        epsilon_budget: spec.epsilon_budget,
        requests: reps * (spec.waves as u64) * (spec.tenants as u64),
        quotes_served: metrics.quotes_served,
        observations: metrics.observations,
        sales: metrics.sales,
        throttled: metrics.privacy_throttled,
        arbitrage_clamps: metrics.arbitrage_clamps,
        owners_exhausted: metrics.owners_exhausted,
        wal_segments,
        quoted_early,
        quoted_late: metrics.quotes_served - quoted_early,
        exhausted_trajectory: trajectory,
        revenue: AggStat::from_values(&revenue),
        compensation: AggStat::from_values(&compensation),
        epsilon_spent: AggStat::from_values(&epsilon),
        accept_rate: AggStat::from_values(&accept_rate),
        perf: PrivacyPerf {
            wall_clock_secs: started.elapsed().as_secs_f64(),
            quotes_per_sec,
            restore_latency_micros: restore_time.as_secs_f64() * 1e6 / reps as f64,
        },
    })
}

/// [`run_privacy_cell_obs`] with the scrape discarded, for callers that
/// only want the report row.
pub fn run_privacy_cell(
    spec: &PrivacyCellSpec,
    workers: usize,
    reps: u64,
) -> Result<PrivacyCellReport, String> {
    run_privacy_cell_obs(spec, workers, reps, &mut MetricRegistry::new())
}

/// Runs a set of privacy cells (the whole grid, or a `--filter` subset),
/// folding every cell's scrape into `obs`.
pub fn run_privacy_cells_obs(
    cells: &[PrivacyCellSpec],
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<Vec<PrivacyCellReport>, String> {
    cells
        .iter()
        .map(|spec| run_privacy_cell_obs(spec, workers, reps, obs))
        .collect()
}

/// Runs a set of privacy cells (the whole grid, or a `--filter` subset).
pub fn run_privacy_cells(
    cells: &[PrivacyCellSpec],
    workers: usize,
    reps: u64,
) -> Result<Vec<PrivacyCellReport>, String> {
    run_privacy_cells_obs(cells, workers, reps, &mut MetricRegistry::new())
}

/// Renders the privacy cells as the console table `bench privacy` prints.
#[must_use]
pub fn render_privacy(cells: &[PrivacyCellReport]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.label.clone(),
                cell.quotes_served.to_string(),
                cell.throttled.to_string(),
                format!(
                    "{}/{}",
                    cell.owners_exhausted,
                    cell.owners * cell.tenants * cell.reps
                ),
                cell.arbitrage_clamps.to_string(),
                cell.wal_segments.to_string(),
                table::fmt(cell.revenue.mean, 2),
                table::fmt(cell.compensation.mean, 2),
                table::fmt(cell.epsilon_spent.mean, 2),
                table::fmt(cell.perf.restore_latency_micros, 1),
                table::fmt(cell.perf.quotes_per_sec, 0),
            ]
        })
        .collect();
    table::render(
        &[
            "cell",
            "quotes",
            "throttled",
            "exhausted",
            "clamps",
            "wal segs",
            "revenue",
            "payouts",
            "ε spent",
            "restore µs",
            "quotes/s",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell() -> PrivacyCellSpec {
        PrivacyCellSpec {
            label: "budget=1.5/owners=4".to_owned(),
            tenants: 4,
            owners: 4,
            shards: 2,
            waves: 16,
            epsilon_budget: 1.5,
            compensation_base: 0.05,
            wal_segment_size: 4,
            checkpoint_every: 4,
            seed: 7,
        }
    }

    #[test]
    fn grid_scales_and_labels_carry_the_budget() {
        let quick = privacy_grid(Scale::Quick);
        assert_eq!(quick.len(), 2);
        assert!(quick[0].label.contains("budget="));
        assert!(quick[0].epsilon_budget < quick[1].epsilon_budget);
        let full = privacy_grid(Scale::Full);
        assert!(full[0].tenants > quick[0].tenants);
        assert!(full[0].waves > quick[0].waves);
    }

    #[test]
    fn cell_exhausts_owners_and_throttles_supply() {
        let report = run_privacy_cell(&tiny_cell(), 2, 1).unwrap();
        assert!(report.quotes_served > 0);
        assert!(report.sales > 0, "the session must make sales to spend ε");
        assert!(
            report.owners_exhausted > 0,
            "the budget must bind mid-run, or the cell measures nothing"
        );
        assert!(report.throttled > 0, "exhausted tenants must refuse quotes");
        assert!(
            report.quoted_late < report.quoted_early,
            "throttling must shrink the served supply ({} late vs {} early)",
            report.quoted_late,
            report.quoted_early
        );
        assert!(report.wal_segments > 0);
        assert!(report.revenue.mean > 0.0);
        assert!(report.compensation.mean > 0.0);
        assert!(
            report.compensation.mean <= report.revenue.mean,
            "the reserve lift must keep payouts under revenue"
        );
        assert!(report.epsilon_spent.mean > 0.0);
        // Sticky retirement: the sampled trajectory never decreases and
        // ends at the final counter.
        let mut last = 0u64;
        for &sample in &report.exhausted_trajectory {
            assert!(sample >= last, "trajectory must be monotone");
            last = sample;
        }
        assert_eq!(last, report.owners_exhausted);
        assert!(report.perf.restore_latency_micros > 0.0);
    }

    #[test]
    fn worker_count_does_not_move_deterministic_aggregates() {
        let one = run_privacy_cell(&tiny_cell(), 1, 1).unwrap();
        let two = run_privacy_cell(&tiny_cell(), 2, 1).unwrap();
        assert_eq!(one.quotes_served, two.quotes_served);
        assert_eq!(one.sales, two.sales);
        assert_eq!(one.throttled, two.throttled);
        assert_eq!(one.owners_exhausted, two.owners_exhausted);
        assert_eq!(one.arbitrage_clamps, two.arbitrage_clamps);
        assert_eq!(one.exhausted_trajectory, two.exhausted_trajectory);
        assert_eq!(one.quoted_early, two.quoted_early);
        assert_eq!(one.quoted_late, two.quoted_late);
        assert_eq!(one.revenue.mean.to_bits(), two.revenue.mean.to_bits());
        assert_eq!(
            one.compensation.mean.to_bits(),
            two.compensation.mean.to_bits()
        );
        assert_eq!(
            one.epsilon_spent.mean.to_bits(),
            two.epsilon_spent.mean.to_bits()
        );
    }

    #[test]
    fn render_lists_every_column() {
        let report = run_privacy_cell(&tiny_cell(), 1, 1).unwrap();
        let rendered = render_privacy(std::slice::from_ref(&report));
        assert!(rendered.contains("budget=1.5/owners=4"));
        assert!(rendered.contains("throttled"));
        assert!(rendered.contains("payouts"));
        assert!(rendered.contains("ε spent"));
    }
}
