//! The versioned `BENCH_*.json` report: schema, writer, parser, validation.
//!
//! A [`BenchReport`] is what `bench <subcommand> --json <path>` writes: run
//! metadata (schema version, git describe, scale, worker count, wall clock)
//! plus one [`ExperimentReport`] per experiment, each holding the
//! [`CellAggregate`]s the runner produced.  CI archives these files per
//! commit so the perf trajectory of the hot paths accumulates run-over-run.
//!
//! Two derived artifacts matter:
//!
//! * [`BenchReport::deterministic_fingerprint`] renders only the
//!   schedule-independent half of the report (no wall clock, no latency, no
//!   git metadata).  The determinism suite asserts this string is
//!   byte-identical for `--workers 1` and `--workers 4`.
//! * [`BenchReport::validate`] is the `--check` gate CI runs at quick scale:
//!   any NaN or negative regret aggregate, or any regret ratio above 1,
//!   fails the build.
//!
//! Schema changes must bump [`SCHEMA_VERSION`] and stay readable by
//! [`BenchReport::from_json`]; the schema is documented in
//! `docs/BENCHMARKS.md`.

use crate::auction::{AuctionCellReport, AuctionPerf};
use crate::drift::{DriftCellReport, DriftPerf};
use crate::grid::{CellSpec, Job};
use crate::json::Json;
use crate::longhaul::{LonghaulCellReport, LonghaulPerf};
use crate::privacy::{PrivacyCellReport, PrivacyPerf};
use crate::runner::{
    aggregate_cell, AggStat, CellAggregate, CellPerf, CheckpointAggregate, JobResult, MeanStd,
};
use crate::serve::{ServeCellReport, ServePerf};
use std::process::Command;

/// Version of the `BENCH_*.json` schema this build writes.
///
/// v8 added the additive top-level `obs` section (the deterministic half
/// of the run's merged `pdm-obs` registry — per-stage span work histograms
/// on the fixed log-bucket grid, the exported service counters, and the
/// point-in-time gauges — byte-identical for any `--workers`) and the
/// additive `latency_mean_micros` perf column of the auction and drift
/// cells, pooled from the all-time streaming latency stats (reads back as
/// `NaN` from v1–v7 files);
/// v7 added the additive `privacy` section (the `bench privacy` workload:
/// privacy-budget economics over a grid of ε budget levels, with
/// revenue-vs-compensation accounting, the per-wave owners-exhausted
/// trajectory, supply throttling as budgets bind, arbitrage-clamp counts,
/// and a bit-identical mid-run WAL restore carrying the owner ledgers);
/// v6 added the additive `longhaul` section (the `bench longhaul`
/// workload: sustained continuous-ingest serving with WAL checkpoints
/// under traffic, a timed mid-run restore verified bit for bit, and
/// cold-tenant paging churn — with memory-per-tenant and restore-latency
/// perf columns);
/// v5 added the additive top-level `perf` summary (the serve workload's
/// grid-level quotes/sec as a first-class figure, the one the
/// `--perf-floor` CI gate reads) — absent for simulation-only runs and for
/// reports read back from v1–v4 files;
/// v4 added the additive `drift` section (the `bench drift` workload: the
/// drift-kind × magnitude × policy grid with post-shift regret, detector
/// firings, and restarts) and made the `validate()` tolerances
/// scale-relative;
/// v3 added the additive `auction` section (the `bench auction` workload:
/// the bidder-count × distribution × reserve-policy grid with clearing
/// revenue, the no-reserve baseline, welfare, and reserve hit-rates);
/// v2 added the additive `serve` section (the `bench serve` closed-loop
/// workload: quotes/sec plus p50/p99 service latency per workload cell);
/// v1–v7 reports parse as v8 reports with the missing sections empty.
pub const SCHEMA_VERSION: u64 = 8;

/// Headline throughput summary (schema v5): the serve workload folded into
/// one first-class perf figure, so CI can gate regressions on a single
/// number instead of re-deriving it from the per-cell section.  Entirely
/// wall-clock derived — never part of the deterministic fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSummary {
    /// Total quotes served across every serve cell.
    pub serve_quotes: u64,
    /// Total drain (service) seconds accumulated across every serve cell.
    pub serve_drain_secs: f64,
    /// Grid-level throughput: `serve_quotes / serve_drain_secs`.
    pub serve_quotes_per_sec: f64,
    /// The slowest single cell's quotes/sec (the tail the floor protects).
    pub serve_min_cell_quotes_per_sec: f64,
}

impl PerfSummary {
    /// Folds the serve cells into the headline summary; `None` when the run
    /// had no serve cells (simulation-only reports carry no summary).
    #[must_use]
    pub fn from_serve(cells: &[ServeCellReport]) -> Option<Self> {
        if cells.is_empty() {
            return None;
        }
        let serve_quotes: u64 = cells.iter().map(|c| c.quotes_served).sum();
        // Each cell reports quotes/sec over its accumulated drain time, so
        // the drain seconds are recovered exactly as quotes ÷ throughput.
        let serve_drain_secs: f64 = cells
            .iter()
            .filter(|c| c.perf.quotes_per_sec > 0.0)
            .map(|c| c.quotes_served as f64 / c.perf.quotes_per_sec)
            .sum();
        let serve_quotes_per_sec = if serve_drain_secs > 0.0 {
            serve_quotes as f64 / serve_drain_secs
        } else {
            0.0
        };
        let serve_min_cell_quotes_per_sec = cells
            .iter()
            .map(|c| c.perf.quotes_per_sec)
            .fold(f64::INFINITY, f64::min);
        Some(Self {
            serve_quotes,
            serve_drain_secs,
            serve_quotes_per_sec,
            serve_min_cell_quotes_per_sec,
        })
    }
}

/// The checked-in throughput floor (`docs/PERF_FLOOR.json`) the
/// `--perf-floor` gate compares a fresh report's [`PerfSummary`] against.
///
/// The gate fails when grid-level quotes/sec falls more than
/// `max_regression` (a fraction, e.g. `0.3`) below `serve_quotes_per_sec`.
/// The floor is deliberately conservative — it catches order-of-magnitude
/// hot-path regressions, not machine-to-machine noise.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfFloor {
    /// The reference grid-level serve throughput, quotes per second.
    pub serve_quotes_per_sec: f64,
    /// Largest tolerated fractional regression below the reference.
    pub max_regression: f64,
}

impl PerfFloor {
    /// Parses a floor file.
    ///
    /// # Errors
    /// A message naming the missing or out-of-range field.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let serve_quotes_per_sec = value
            .get("serve_quotes_per_sec")
            .and_then(Json::as_f64)
            .ok_or("perf floor: missing number `serve_quotes_per_sec`")?;
        if !serve_quotes_per_sec.is_finite() || serve_quotes_per_sec <= 0.0 {
            return Err(format!(
                "perf floor: `serve_quotes_per_sec` must be positive, got {serve_quotes_per_sec}"
            ));
        }
        let max_regression = value
            .get("max_regression")
            .and_then(Json::as_f64)
            .ok_or("perf floor: missing number `max_regression`")?;
        if !(0.0..1.0).contains(&max_regression) {
            return Err(format!(
                "perf floor: `max_regression` must be a fraction in [0, 1), got {max_regression}"
            ));
        }
        Ok(Self {
            serve_quotes_per_sec,
            max_regression,
        })
    }

    /// Applies the gate to a report.  `Ok` carries the pass message to
    /// print; `Err` carries the failure (a report without serve cells
    /// cannot be gated and also fails).
    pub fn check(&self, report: &BenchReport) -> Result<String, String> {
        let perf = report.perf.as_ref().ok_or(
            "perf floor: the report has no serve cells — gate a `bench serve` run".to_owned(),
        )?;
        let bar = (1.0 - self.max_regression) * self.serve_quotes_per_sec;
        if perf.serve_quotes_per_sec < bar {
            return Err(format!(
                "perf floor failed: grid serve throughput {:.0} quotes/s fell below \
                 {:.0} (floor {:.0} − {:.0}% tolerance)",
                perf.serve_quotes_per_sec,
                bar,
                self.serve_quotes_per_sec,
                self.max_regression * 100.0
            ));
        }
        Ok(format!(
            "perf floor passed: grid serve throughput {:.0} quotes/s >= {:.0} \
             (floor {:.0} − {:.0}% tolerance)",
            perf.serve_quotes_per_sec,
            bar,
            self.serve_quotes_per_sec,
            self.max_regression * 100.0
        ))
    }
}

/// The aggregates of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment name (e.g. `fig4/n=20`, `overhead/applications`).
    pub name: String,
    /// One aggregate per grid cell.
    pub cells: Vec<CellAggregate>,
}

/// The top-level report one `bench` invocation writes.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] for freshly written reports).
    pub schema_version: u64,
    /// The subcommand that produced the report (`all`, `fig4`, …).
    pub name: String,
    /// `git describe --always --dirty` of the tree, or `unknown`.
    pub git_describe: String,
    /// `quick` or `full`.
    pub scale: String,
    /// Worker threads the grid ran on.
    pub workers: usize,
    /// Repetitions per cell.
    pub reps: u64,
    /// End-to-end wall-clock seconds for the whole grid.
    pub wall_clock_secs: f64,
    /// Per-experiment aggregates.
    pub experiments: Vec<ExperimentReport>,
    /// Serve-workload cells (schema v2; empty for simulation-only runs and
    /// for reports read back from v1 files).
    pub serve: Vec<ServeCellReport>,
    /// Auction-workload cells (schema v3; empty for other runs and for
    /// reports read back from v1/v2 files).
    pub auction: Vec<AuctionCellReport>,
    /// Drift-workload cells (schema v4; empty for other runs and for
    /// reports read back from v1–v3 files).
    pub drift: Vec<DriftCellReport>,
    /// Longhaul-workload cells (schema v6; empty for other runs and for
    /// reports read back from v1–v5 files).
    pub longhaul: Vec<LonghaulCellReport>,
    /// Privacy-workload cells (schema v7; empty for other runs and for
    /// reports read back from v1–v6 files).
    pub privacy: Vec<PrivacyCellReport>,
    /// Headline throughput summary (schema v5; `None` for simulation-only
    /// runs and for reports read back from v1–v4 files).
    pub perf: Option<PerfSummary>,
    /// Deterministic observability dump (schema v8): the merged run
    /// registry's `to_json(deterministic_only = true)` — per-stage span
    /// work histograms, exported service counters, and gauges, all
    /// byte-identical for any `--workers`.  `None` for simulation-only
    /// runs and for reports read back from v1–v7 files.
    pub obs: Option<Json>,
}

/// Groups executed job results back into per-experiment aggregates.
///
/// `named_grids` pairs each experiment's name with its cells, in the same
/// order the grids were passed to [`crate::grid::expand_jobs`]; `jobs` and
/// `results` are the runner's aligned input and output.  This is the one
/// aggregation path — the `bench` CLI and the determinism suite both call
/// it, so the suite exercises exactly what ships.
#[must_use]
pub fn build_experiment_reports<'a, I>(
    named_grids: I,
    jobs: &[Job],
    results: &[JobResult],
) -> Vec<ExperimentReport>
where
    I: IntoIterator<Item = (&'a str, &'a [CellSpec])>,
{
    named_grids
        .into_iter()
        .enumerate()
        .map(|(e, (name, cells))| ExperimentReport {
            name: name.to_owned(),
            cells: cells
                .iter()
                .enumerate()
                .map(|(c, cell)| {
                    let reps: Vec<&JobResult> = jobs
                        .iter()
                        .zip(results)
                        .filter(|(job, _)| job.experiment == e && job.cell == c)
                        .map(|(_, result)| result)
                        .collect();
                    aggregate_cell(&cell.label, &cell.checkpoints, &reps)
                })
                .collect(),
        })
        .collect()
}

/// `git describe --always --dirty --tags` of the working tree, `unknown`
/// when git is unavailable.
#[must_use]
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn agg_stat_json(stat: &AggStat) -> Json {
    Json::obj(vec![
        ("mean", Json::Num(stat.mean)),
        ("std", Json::Num(stat.std)),
        ("ci95_half", Json::Num(stat.ci95_half)),
        ("min", Json::Num(stat.min)),
        ("max", Json::Num(stat.max)),
    ])
}

fn agg_stat_from_json(value: &Json, context: &str) -> Result<AggStat, String> {
    let field = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing number `{key}`"))
    };
    Ok(AggStat {
        mean: field("mean")?,
        std: field("std")?,
        ci95_half: field("ci95_half")?,
        min: field("min")?,
        max: field("max")?,
    })
}

fn mean_std_json(value: &MeanStd) -> Json {
    Json::obj(vec![
        ("mean", Json::Num(value.mean)),
        ("std", Json::Num(value.std)),
    ])
}

fn mean_std_from_json(value: &Json, context: &str) -> Result<MeanStd, String> {
    let field = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing number `{key}`"))
    };
    Ok(MeanStd {
        mean: field("mean")?,
        std: field("std")?,
    })
}

/// Serialises the schedule-independent part of a cell (everything except
/// `perf`).
fn cell_deterministic_json(cell: &CellAggregate) -> Json {
    Json::obj(vec![
        ("label", Json::str(&cell.label)),
        ("mechanism", Json::str(&cell.mechanism_name)),
        ("reps", Json::Num(cell.reps as f64)),
        ("rounds", Json::Num(cell.rounds as f64)),
        ("cumulative_regret", agg_stat_json(&cell.cumulative_regret)),
        ("regret_ratio", agg_stat_json(&cell.regret_ratio)),
        ("revenue", agg_stat_json(&cell.revenue)),
        ("acceptance_rate", agg_stat_json(&cell.acceptance_rate)),
        (
            "market_value_per_round",
            mean_std_json(&cell.market_value_per_round),
        ),
        (
            "reserve_price_per_round",
            mean_std_json(&cell.reserve_price_per_round),
        ),
        (
            "posted_price_per_round",
            mean_std_json(&cell.posted_price_per_round),
        ),
        ("regret_per_round", mean_std_json(&cell.regret_per_round)),
        (
            "checkpoints",
            Json::Arr(
                cell.checkpoints
                    .iter()
                    .map(|cp| {
                        Json::obj(vec![
                            ("round", Json::Num(cp.round as f64)),
                            ("cumulative_regret", agg_stat_json(&cp.cumulative_regret)),
                            ("regret_ratio", agg_stat_json(&cp.regret_ratio)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn cell_json(cell: &CellAggregate) -> Json {
    let mut json = cell_deterministic_json(cell);
    let perf = Json::obj(vec![
        ("wall_clock_secs", Json::Num(cell.perf.wall_clock_secs)),
        ("rounds_per_sec", Json::Num(cell.perf.rounds_per_sec)),
        (
            "latency_mean_micros",
            Json::Num(cell.perf.latency_mean_micros),
        ),
        (
            "latency_p50_micros",
            Json::Num(cell.perf.latency_p50_micros),
        ),
        (
            "latency_p99_micros",
            Json::Num(cell.perf.latency_p99_micros),
        ),
        (
            "latency_max_micros",
            Json::Num(cell.perf.latency_max_micros),
        ),
        ("memory_bytes", Json::Num(cell.perf.memory_bytes as f64)),
    ]);
    if let Json::Obj(pairs) = &mut json {
        pairs.push(("perf".to_owned(), perf));
    }
    json
}

/// Serialises the schedule-independent part of a serve cell: everything
/// except `perf` and the worker count (both legitimately differ between the
/// runs the determinism suite compares).
fn serve_cell_deterministic_json(cell: &ServeCellReport) -> Json {
    Json::obj(vec![
        ("label", Json::str(&cell.label)),
        ("mix", Json::str(&cell.mix)),
        ("tenants", Json::Num(cell.tenants as f64)),
        ("shards", Json::Num(cell.shards as f64)),
        ("waves", Json::Num(cell.waves as f64)),
        ("reps", Json::Num(cell.reps as f64)),
        ("quotes_served", Json::Num(cell.quotes_served as f64)),
        ("observations", Json::Num(cell.observations as f64)),
        ("sales", Json::Num(cell.sales as f64)),
        ("shed", Json::Num(cell.shed as f64)),
        ("rejected", Json::Num(cell.rejected as f64)),
        ("revenue", agg_stat_json(&cell.revenue)),
        ("regret", agg_stat_json(&cell.regret)),
        ("accept_rate", agg_stat_json(&cell.accept_rate)),
    ])
}

fn serve_cell_json(cell: &ServeCellReport) -> Json {
    let mut json = serve_cell_deterministic_json(cell);
    let perf = Json::obj(vec![
        ("wall_clock_secs", Json::Num(cell.perf.wall_clock_secs)),
        ("quotes_per_sec", Json::Num(cell.perf.quotes_per_sec)),
        (
            "latency_mean_micros",
            Json::Num(cell.perf.latency_mean_micros),
        ),
        (
            "latency_p50_micros",
            Json::Num(cell.perf.latency_p50_micros),
        ),
        (
            "latency_p99_micros",
            Json::Num(cell.perf.latency_p99_micros),
        ),
    ]);
    if let Json::Obj(pairs) = &mut json {
        pairs.push(("workers".to_owned(), Json::Num(cell.workers as f64)));
        pairs.push(("perf".to_owned(), perf));
    }
    json
}

fn serve_cell_from_json(value: &Json) -> Result<ServeCellReport, String> {
    let label = value
        .get("label")
        .and_then(Json::as_str)
        .ok_or("serve cell: missing `label`")?
        .to_owned();
    let context = format!("serve cell `{label}`");
    let count = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{context}: missing count `{key}`"))
    };
    let stat = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
            .and_then(|v| agg_stat_from_json(v, &context))
    };
    let perf = value
        .get("perf")
        .ok_or_else(|| format!("{context}: missing `perf`"))?;
    let perf_field = |key: &str| {
        perf.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing perf number `{key}`"))
    };
    Ok(ServeCellReport {
        mix: value
            .get("mix")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{context}: missing `mix`"))?
            .to_owned(),
        tenants: count("tenants")?,
        shards: count("shards")?,
        waves: count("waves")?,
        reps: count("reps")?,
        workers: count("workers")?,
        quotes_served: count("quotes_served")?,
        observations: count("observations")?,
        sales: count("sales")?,
        shed: count("shed")?,
        rejected: count("rejected")?,
        revenue: stat("revenue")?,
        regret: stat("regret")?,
        accept_rate: stat("accept_rate")?,
        perf: ServePerf {
            wall_clock_secs: perf_field("wall_clock_secs")?,
            quotes_per_sec: perf_field("quotes_per_sec")?,
            latency_mean_micros: perf_field("latency_mean_micros")?,
            latency_p50_micros: perf_field("latency_p50_micros")?,
            latency_p99_micros: perf_field("latency_p99_micros")?,
        },
        label,
    })
}

/// Serialises the schedule-independent part of an auction cell: everything
/// except `perf` and the worker count.
fn auction_cell_deterministic_json(cell: &AuctionCellReport) -> Json {
    Json::obj(vec![
        ("label", Json::str(&cell.label)),
        ("distribution", Json::str(&cell.distribution)),
        ("policy", Json::str(&cell.policy)),
        ("tenants", Json::Num(cell.tenants as f64)),
        ("bidders", Json::Num(cell.bidders as f64)),
        ("shards", Json::Num(cell.shards as f64)),
        ("waves", Json::Num(cell.waves as f64)),
        ("reps", Json::Num(cell.reps as f64)),
        ("auctions", Json::Num(cell.auctions as f64)),
        ("sales", Json::Num(cell.sales as f64)),
        ("reserve_hits", Json::Num(cell.reserve_hits as f64)),
        ("revenue", agg_stat_json(&cell.revenue)),
        ("baseline_revenue", agg_stat_json(&cell.baseline_revenue)),
        ("welfare", agg_stat_json(&cell.welfare)),
        ("hit_rate", agg_stat_json(&cell.hit_rate)),
    ])
}

fn auction_cell_json(cell: &AuctionCellReport) -> Json {
    let mut json = auction_cell_deterministic_json(cell);
    let perf = Json::obj(vec![
        ("wall_clock_secs", Json::Num(cell.perf.wall_clock_secs)),
        ("rounds_per_sec", Json::Num(cell.perf.rounds_per_sec)),
        (
            "latency_mean_micros",
            Json::Num(cell.perf.latency_mean_micros),
        ),
        (
            "latency_p50_micros",
            Json::Num(cell.perf.latency_p50_micros),
        ),
        (
            "latency_p99_micros",
            Json::Num(cell.perf.latency_p99_micros),
        ),
    ]);
    if let Json::Obj(pairs) = &mut json {
        pairs.push(("workers".to_owned(), Json::Num(cell.workers as f64)));
        pairs.push(("perf".to_owned(), perf));
    }
    json
}

fn auction_cell_from_json(value: &Json) -> Result<AuctionCellReport, String> {
    let label = value
        .get("label")
        .and_then(Json::as_str)
        .ok_or("auction cell: missing `label`")?
        .to_owned();
    let context = format!("auction cell `{label}`");
    let text = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
    };
    let count = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{context}: missing count `{key}`"))
    };
    let stat = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
            .and_then(|v| agg_stat_from_json(v, &context))
    };
    let perf = value
        .get("perf")
        .ok_or_else(|| format!("{context}: missing `perf`"))?;
    let perf_field = |key: &str| {
        perf.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing perf number `{key}`"))
    };
    Ok(AuctionCellReport {
        distribution: text("distribution")?,
        policy: text("policy")?,
        tenants: count("tenants")?,
        bidders: count("bidders")?,
        shards: count("shards")?,
        waves: count("waves")?,
        reps: count("reps")?,
        workers: count("workers")?,
        auctions: count("auctions")?,
        sales: count("sales")?,
        reserve_hits: count("reserve_hits")?,
        revenue: stat("revenue")?,
        baseline_revenue: stat("baseline_revenue")?,
        welfare: stat("welfare")?,
        hit_rate: stat("hit_rate")?,
        perf: AuctionPerf {
            wall_clock_secs: perf_field("wall_clock_secs")?,
            rounds_per_sec: perf_field("rounds_per_sec")?,
            // Additive in v8: v1–v7 files read back as NaN, like every
            // other absent wall-clock figure.
            latency_mean_micros: perf
                .get("latency_mean_micros")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
            latency_p50_micros: perf_field("latency_p50_micros")?,
            latency_p99_micros: perf_field("latency_p99_micros")?,
        },
        label,
    })
}

/// Serialises the schedule-independent part of a drift cell: everything
/// except `perf` and the worker count.
fn drift_cell_deterministic_json(cell: &DriftCellReport) -> Json {
    Json::obj(vec![
        ("label", Json::str(&cell.label)),
        ("kind", Json::str(&cell.kind)),
        ("magnitude", Json::Num(cell.magnitude)),
        ("policy", Json::str(&cell.policy)),
        ("tenants", Json::Num(cell.tenants as f64)),
        ("shards", Json::Num(cell.shards as f64)),
        ("waves", Json::Num(cell.waves as f64)),
        ("reps", Json::Num(cell.reps as f64)),
        ("rounds", Json::Num(cell.rounds as f64)),
        ("sales", Json::Num(cell.sales as f64)),
        ("drift_fires", Json::Num(cell.drift_fires as f64)),
        ("drift_restarts", Json::Num(cell.drift_restarts as f64)),
        ("revenue", agg_stat_json(&cell.revenue)),
        ("regret", agg_stat_json(&cell.regret)),
        ("post_shift_regret", agg_stat_json(&cell.post_shift_regret)),
        ("accept_rate", agg_stat_json(&cell.accept_rate)),
    ])
}

fn drift_cell_json(cell: &DriftCellReport) -> Json {
    let mut json = drift_cell_deterministic_json(cell);
    let perf = Json::obj(vec![
        ("wall_clock_secs", Json::Num(cell.perf.wall_clock_secs)),
        ("quotes_per_sec", Json::Num(cell.perf.quotes_per_sec)),
        (
            "latency_mean_micros",
            Json::Num(cell.perf.latency_mean_micros),
        ),
        (
            "latency_p50_micros",
            Json::Num(cell.perf.latency_p50_micros),
        ),
        (
            "latency_p99_micros",
            Json::Num(cell.perf.latency_p99_micros),
        ),
    ]);
    if let Json::Obj(pairs) = &mut json {
        pairs.push(("workers".to_owned(), Json::Num(cell.workers as f64)));
        pairs.push(("perf".to_owned(), perf));
    }
    json
}

fn drift_cell_from_json(value: &Json) -> Result<DriftCellReport, String> {
    let label = value
        .get("label")
        .and_then(Json::as_str)
        .ok_or("drift cell: missing `label`")?
        .to_owned();
    let context = format!("drift cell `{label}`");
    let text = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
    };
    let count = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{context}: missing count `{key}`"))
    };
    let stat = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
            .and_then(|v| agg_stat_from_json(v, &context))
    };
    let perf = value
        .get("perf")
        .ok_or_else(|| format!("{context}: missing `perf`"))?;
    let perf_field = |key: &str| {
        perf.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing perf number `{key}`"))
    };
    Ok(DriftCellReport {
        kind: text("kind")?,
        magnitude: value
            .get("magnitude")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing `magnitude`"))?,
        policy: text("policy")?,
        tenants: count("tenants")?,
        shards: count("shards")?,
        waves: count("waves")?,
        reps: count("reps")?,
        workers: count("workers")?,
        rounds: count("rounds")?,
        sales: count("sales")?,
        drift_fires: count("drift_fires")?,
        drift_restarts: count("drift_restarts")?,
        revenue: stat("revenue")?,
        regret: stat("regret")?,
        post_shift_regret: stat("post_shift_regret")?,
        accept_rate: stat("accept_rate")?,
        perf: DriftPerf {
            wall_clock_secs: perf_field("wall_clock_secs")?,
            quotes_per_sec: perf_field("quotes_per_sec")?,
            // Additive in v8: v1–v7 files read back as NaN, like every
            // other absent wall-clock figure.
            latency_mean_micros: perf
                .get("latency_mean_micros")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
            latency_p50_micros: perf_field("latency_p50_micros")?,
            latency_p99_micros: perf_field("latency_p99_micros")?,
        },
        label,
    })
}

/// Serialises the schedule-independent part of a longhaul cell: everything
/// except `perf` and the worker count.  The paging and WAL counters belong
/// here — the per-shard LRU clock advances in FIFO admission order, so
/// evictions, rehydrations, segment counts, and the resident high-water
/// mark are all worker-count independent.
fn longhaul_cell_deterministic_json(cell: &LonghaulCellReport) -> Json {
    Json::obj(vec![
        ("label", Json::str(&cell.label)),
        ("tenants", Json::Num(cell.tenants as f64)),
        ("shards", Json::Num(cell.shards as f64)),
        ("waves", Json::Num(cell.waves as f64)),
        ("reps", Json::Num(cell.reps as f64)),
        (
            "resident_capacity",
            Json::Num(cell.resident_capacity as f64),
        ),
        ("wal_segment_size", Json::Num(cell.wal_segment_size as f64)),
        ("quotes_served", Json::Num(cell.quotes_served as f64)),
        ("observations", Json::Num(cell.observations as f64)),
        ("sales", Json::Num(cell.sales as f64)),
        ("evictions", Json::Num(cell.evictions as f64)),
        ("rehydrations", Json::Num(cell.rehydrations as f64)),
        ("wal_segments", Json::Num(cell.wal_segments as f64)),
        ("max_resident", Json::Num(cell.max_resident as f64)),
        ("revenue", agg_stat_json(&cell.revenue)),
        ("regret", agg_stat_json(&cell.regret)),
        ("accept_rate", agg_stat_json(&cell.accept_rate)),
    ])
}

fn longhaul_cell_json(cell: &LonghaulCellReport) -> Json {
    let mut json = longhaul_cell_deterministic_json(cell);
    let perf = Json::obj(vec![
        ("wall_clock_secs", Json::Num(cell.perf.wall_clock_secs)),
        ("quotes_per_sec", Json::Num(cell.perf.quotes_per_sec)),
        (
            "restore_latency_micros",
            Json::Num(cell.perf.restore_latency_micros),
        ),
        (
            "memory_per_tenant_bytes",
            Json::Num(cell.perf.memory_per_tenant_bytes),
        ),
    ]);
    if let Json::Obj(pairs) = &mut json {
        pairs.push(("workers".to_owned(), Json::Num(cell.workers as f64)));
        pairs.push(("perf".to_owned(), perf));
    }
    json
}

fn longhaul_cell_from_json(value: &Json) -> Result<LonghaulCellReport, String> {
    let label = value
        .get("label")
        .and_then(Json::as_str)
        .ok_or("longhaul cell: missing `label`")?
        .to_owned();
    let context = format!("longhaul cell `{label}`");
    let count = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{context}: missing count `{key}`"))
    };
    let stat = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
            .and_then(|v| agg_stat_from_json(v, &context))
    };
    let perf = value
        .get("perf")
        .ok_or_else(|| format!("{context}: missing `perf`"))?;
    let perf_field = |key: &str| {
        perf.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing perf number `{key}`"))
    };
    Ok(LonghaulCellReport {
        tenants: count("tenants")?,
        shards: count("shards")?,
        waves: count("waves")?,
        reps: count("reps")?,
        workers: count("workers")?,
        resident_capacity: count("resident_capacity")?,
        wal_segment_size: count("wal_segment_size")?,
        quotes_served: count("quotes_served")?,
        observations: count("observations")?,
        sales: count("sales")?,
        evictions: count("evictions")?,
        rehydrations: count("rehydrations")?,
        wal_segments: count("wal_segments")?,
        max_resident: count("max_resident")?,
        revenue: stat("revenue")?,
        regret: stat("regret")?,
        accept_rate: stat("accept_rate")?,
        perf: LonghaulPerf {
            wall_clock_secs: perf_field("wall_clock_secs")?,
            quotes_per_sec: perf_field("quotes_per_sec")?,
            restore_latency_micros: perf_field("restore_latency_micros")?,
            memory_per_tenant_bytes: perf_field("memory_per_tenant_bytes")?,
        },
        label,
    })
}

/// Serialises the schedule-independent part of a privacy cell: everything
/// except `perf` and the worker count.  The ledger economics belong here —
/// ε debits, compensation accruals, exhaustion counts, and the per-wave
/// trajectory are all settled in submission order, so they are
/// worker-count independent by the service's determinism contract.
fn privacy_cell_deterministic_json(cell: &PrivacyCellReport) -> Json {
    Json::obj(vec![
        ("label", Json::str(&cell.label)),
        ("tenants", Json::Num(cell.tenants as f64)),
        ("shards", Json::Num(cell.shards as f64)),
        ("waves", Json::Num(cell.waves as f64)),
        ("reps", Json::Num(cell.reps as f64)),
        ("owners", Json::Num(cell.owners as f64)),
        ("epsilon_budget", Json::Num(cell.epsilon_budget)),
        ("requests", Json::Num(cell.requests as f64)),
        ("quotes_served", Json::Num(cell.quotes_served as f64)),
        ("observations", Json::Num(cell.observations as f64)),
        ("sales", Json::Num(cell.sales as f64)),
        ("throttled", Json::Num(cell.throttled as f64)),
        ("arbitrage_clamps", Json::Num(cell.arbitrage_clamps as f64)),
        ("owners_exhausted", Json::Num(cell.owners_exhausted as f64)),
        ("wal_segments", Json::Num(cell.wal_segments as f64)),
        ("quoted_early", Json::Num(cell.quoted_early as f64)),
        ("quoted_late", Json::Num(cell.quoted_late as f64)),
        (
            "exhausted_trajectory",
            Json::Arr(
                cell.exhausted_trajectory
                    .iter()
                    .map(|&n| Json::Num(n as f64))
                    .collect(),
            ),
        ),
        ("revenue", agg_stat_json(&cell.revenue)),
        ("compensation", agg_stat_json(&cell.compensation)),
        ("epsilon_spent", agg_stat_json(&cell.epsilon_spent)),
        ("accept_rate", agg_stat_json(&cell.accept_rate)),
    ])
}

fn privacy_cell_json(cell: &PrivacyCellReport) -> Json {
    let mut json = privacy_cell_deterministic_json(cell);
    let perf = Json::obj(vec![
        ("wall_clock_secs", Json::Num(cell.perf.wall_clock_secs)),
        ("quotes_per_sec", Json::Num(cell.perf.quotes_per_sec)),
        (
            "restore_latency_micros",
            Json::Num(cell.perf.restore_latency_micros),
        ),
    ]);
    if let Json::Obj(pairs) = &mut json {
        pairs.push(("workers".to_owned(), Json::Num(cell.workers as f64)));
        pairs.push(("perf".to_owned(), perf));
    }
    json
}

fn privacy_cell_from_json(value: &Json) -> Result<PrivacyCellReport, String> {
    let label = value
        .get("label")
        .and_then(Json::as_str)
        .ok_or("privacy cell: missing `label`")?
        .to_owned();
    let context = format!("privacy cell `{label}`");
    let count = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{context}: missing count `{key}`"))
    };
    let stat = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
            .and_then(|v| agg_stat_from_json(v, &context))
    };
    let exhausted_trajectory = value
        .get("exhausted_trajectory")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{context}: missing `exhausted_trajectory`"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("{context}: trajectory entries must be counts"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let perf = value
        .get("perf")
        .ok_or_else(|| format!("{context}: missing `perf`"))?;
    let perf_field = |key: &str| {
        perf.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing perf number `{key}`"))
    };
    Ok(PrivacyCellReport {
        tenants: count("tenants")?,
        shards: count("shards")?,
        waves: count("waves")?,
        reps: count("reps")?,
        workers: count("workers")?,
        owners: count("owners")?,
        epsilon_budget: value
            .get("epsilon_budget")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing number `epsilon_budget`"))?,
        requests: count("requests")?,
        quotes_served: count("quotes_served")?,
        observations: count("observations")?,
        sales: count("sales")?,
        throttled: count("throttled")?,
        arbitrage_clamps: count("arbitrage_clamps")?,
        owners_exhausted: count("owners_exhausted")?,
        wal_segments: count("wal_segments")?,
        quoted_early: count("quoted_early")?,
        quoted_late: count("quoted_late")?,
        exhausted_trajectory,
        revenue: stat("revenue")?,
        compensation: stat("compensation")?,
        epsilon_spent: stat("epsilon_spent")?,
        accept_rate: stat("accept_rate")?,
        perf: PrivacyPerf {
            wall_clock_secs: perf_field("wall_clock_secs")?,
            quotes_per_sec: perf_field("quotes_per_sec")?,
            restore_latency_micros: perf_field("restore_latency_micros")?,
        },
        label,
    })
}

fn cell_from_json(value: &Json) -> Result<CellAggregate, String> {
    let label = value
        .get("label")
        .and_then(Json::as_str)
        .ok_or("cell: missing `label`")?
        .to_owned();
    let context = format!("cell `{label}`");
    let stat = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
            .and_then(|v| agg_stat_from_json(v, &context))
    };
    let per_round = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("{context}: missing `{key}`"))
            .and_then(|v| mean_std_from_json(v, &context))
    };
    let perf = value
        .get("perf")
        .ok_or_else(|| format!("{context}: missing `perf`"))?;
    let perf_field = |key: &str| {
        perf.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{context}: missing perf number `{key}`"))
    };
    let checkpoints = value
        .get("checkpoints")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{context}: missing `checkpoints`"))?
        .iter()
        .map(|cp| {
            Ok(CheckpointAggregate {
                round: cp
                    .get("round")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{context}: checkpoint missing `round`"))?
                    as usize,
                cumulative_regret: agg_stat_from_json(
                    cp.get("cumulative_regret")
                        .ok_or_else(|| format!("{context}: checkpoint missing regret"))?,
                    &context,
                )?,
                regret_ratio: agg_stat_from_json(
                    cp.get("regret_ratio")
                        .ok_or_else(|| format!("{context}: checkpoint missing ratio"))?,
                    &context,
                )?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CellAggregate {
        mechanism_name: value
            .get("mechanism")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{context}: missing `mechanism`"))?
            .to_owned(),
        reps: value
            .get("reps")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{context}: missing `reps`"))?,
        rounds: value
            .get("rounds")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{context}: missing `rounds`"))? as usize,
        cumulative_regret: stat("cumulative_regret")?,
        regret_ratio: stat("regret_ratio")?,
        revenue: stat("revenue")?,
        acceptance_rate: stat("acceptance_rate")?,
        market_value_per_round: per_round("market_value_per_round")?,
        reserve_price_per_round: per_round("reserve_price_per_round")?,
        posted_price_per_round: per_round("posted_price_per_round")?,
        regret_per_round: per_round("regret_per_round")?,
        checkpoints,
        perf: CellPerf {
            wall_clock_secs: perf_field("wall_clock_secs")?,
            rounds_per_sec: perf_field("rounds_per_sec")?,
            latency_mean_micros: perf_field("latency_mean_micros")?,
            latency_p50_micros: perf_field("latency_p50_micros")?,
            latency_p99_micros: perf_field("latency_p99_micros")?,
            latency_max_micros: perf_field("latency_max_micros")?,
            memory_bytes: perf_field("memory_bytes")? as usize,
        },
        label,
    })
}

impl BenchReport {
    /// Serialises the full report (metadata + aggregates + perf).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut json = Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("name", Json::str(&self.name)),
            ("git_describe", Json::str(&self.git_describe)),
            ("scale", Json::str(&self.scale)),
            ("workers", Json::Num(self.workers as f64)),
            ("reps", Json::Num(self.reps as f64)),
            ("wall_clock_secs", Json::Num(self.wall_clock_secs)),
            (
                "experiments",
                Json::Arr(
                    self.experiments
                        .iter()
                        .map(|exp| {
                            Json::obj(vec![
                                ("name", Json::str(&exp.name)),
                                (
                                    "cells",
                                    Json::Arr(exp.cells.iter().map(cell_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "serve",
                Json::Arr(self.serve.iter().map(serve_cell_json).collect()),
            ),
            (
                "auction",
                Json::Arr(self.auction.iter().map(auction_cell_json).collect()),
            ),
            (
                "drift",
                Json::Arr(self.drift.iter().map(drift_cell_json).collect()),
            ),
            (
                "longhaul",
                Json::Arr(self.longhaul.iter().map(longhaul_cell_json).collect()),
            ),
            (
                "privacy",
                Json::Arr(self.privacy.iter().map(privacy_cell_json).collect()),
            ),
        ]);
        if let Some(perf) = &self.perf {
            let summary = Json::obj(vec![
                ("serve_quotes", Json::Num(perf.serve_quotes as f64)),
                ("serve_drain_secs", Json::Num(perf.serve_drain_secs)),
                ("serve_quotes_per_sec", Json::Num(perf.serve_quotes_per_sec)),
                (
                    "serve_min_cell_quotes_per_sec",
                    Json::Num(perf.serve_min_cell_quotes_per_sec),
                ),
            ]);
            if let Json::Obj(pairs) = &mut json {
                pairs.push(("perf".to_owned(), summary));
            }
        }
        if let Some(obs) = &self.obs {
            if let Json::Obj(pairs) = &mut json {
                pairs.push(("obs".to_owned(), obs.clone()));
            }
        }
        json
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let schema_version = value
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report: missing `schema_version`")?;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "report: schema version {schema_version} is newer than this build's \
                 {SCHEMA_VERSION}"
            ));
        }
        let text = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("report: missing `{key}`"))
        };
        let experiments = value
            .get("experiments")
            .and_then(Json::as_arr)
            .ok_or("report: missing `experiments`")?
            .iter()
            .map(|exp| {
                Ok(ExperimentReport {
                    name: exp
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("experiment: missing `name`")?
                        .to_owned(),
                    cells: exp
                        .get("cells")
                        .and_then(Json::as_arr)
                        .ok_or("experiment: missing `cells`")?
                        .iter()
                        .map(cell_from_json)
                        .collect::<Result<Vec<_>, String>>()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        // `serve` arrived with schema v2, `auction` with v3, and `drift`
        // with v4; absent sections in older files mean "no such cells",
        // not an error.
        let serve = match value.get("serve") {
            Some(section) => section
                .as_arr()
                .ok_or("report: `serve` must be an array")?
                .iter()
                .map(serve_cell_from_json)
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        let auction = match value.get("auction") {
            Some(section) => section
                .as_arr()
                .ok_or("report: `auction` must be an array")?
                .iter()
                .map(auction_cell_from_json)
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        let drift = match value.get("drift") {
            Some(section) => section
                .as_arr()
                .ok_or("report: `drift` must be an array")?
                .iter()
                .map(drift_cell_from_json)
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        // `longhaul` arrived with schema v6; same additive rule.
        let longhaul = match value.get("longhaul") {
            Some(section) => section
                .as_arr()
                .ok_or("report: `longhaul` must be an array")?
                .iter()
                .map(longhaul_cell_from_json)
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        // `privacy` arrived with schema v7; same additive rule.
        let privacy = match value.get("privacy") {
            Some(section) => section
                .as_arr()
                .ok_or("report: `privacy` must be an array")?
                .iter()
                .map(privacy_cell_from_json)
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        // The `perf` summary arrived with schema v5; its absence (older
        // files, simulation-only runs) means "no summary", not an error.
        let perf = match value.get("perf") {
            Some(section) => {
                let field = |key: &str| {
                    section
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("report: perf summary missing number `{key}`"))
                };
                Some(PerfSummary {
                    serve_quotes: section
                        .get("serve_quotes")
                        .and_then(Json::as_u64)
                        .ok_or("report: perf summary missing count `serve_quotes`")?,
                    serve_drain_secs: field("serve_drain_secs")?,
                    serve_quotes_per_sec: field("serve_quotes_per_sec")?,
                    serve_min_cell_quotes_per_sec: field("serve_min_cell_quotes_per_sec")?,
                })
            }
            None => None,
        };
        Ok(Self {
            schema_version,
            serve,
            auction,
            drift,
            longhaul,
            privacy,
            perf,
            // The `obs` section arrived with schema v8; it is carried
            // verbatim — the registry dump is already canonical JSON.
            obs: value.get("obs").cloned(),
            name: text("name")?,
            git_describe: text("git_describe")?,
            scale: text("scale")?,
            workers: value
                .get("workers")
                .and_then(Json::as_u64)
                .ok_or("report: missing `workers`")? as usize,
            reps: value
                .get("reps")
                .and_then(Json::as_u64)
                .ok_or("report: missing `reps`")?,
            wall_clock_secs: value
                .get("wall_clock_secs")
                .and_then(Json::as_f64)
                .ok_or("report: missing `wall_clock_secs`")?,
            experiments,
        })
    }

    /// Canonical rendering of the schedule-independent aggregates: the
    /// experiments and their cells *without* `perf`, wall clock, worker
    /// count, or git metadata.  Byte-identical across worker counts.
    #[must_use]
    pub fn deterministic_fingerprint(&self) -> String {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("name", Json::str(&self.name)),
            ("scale", Json::str(&self.scale)),
            ("reps", Json::Num(self.reps as f64)),
            (
                "experiments",
                Json::Arr(
                    self.experiments
                        .iter()
                        .map(|exp| {
                            Json::obj(vec![
                                ("name", Json::str(&exp.name)),
                                (
                                    "cells",
                                    Json::Arr(
                                        exp.cells.iter().map(cell_deterministic_json).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "serve",
                Json::Arr(
                    self.serve
                        .iter()
                        .map(serve_cell_deterministic_json)
                        .collect(),
                ),
            ),
            (
                "auction",
                Json::Arr(
                    self.auction
                        .iter()
                        .map(auction_cell_deterministic_json)
                        .collect(),
                ),
            ),
            (
                "drift",
                Json::Arr(
                    self.drift
                        .iter()
                        .map(drift_cell_deterministic_json)
                        .collect(),
                ),
            ),
            (
                "longhaul",
                Json::Arr(
                    self.longhaul
                        .iter()
                        .map(longhaul_cell_deterministic_json)
                        .collect(),
                ),
            ),
            (
                "privacy",
                Json::Arr(
                    self.privacy
                        .iter()
                        .map(privacy_cell_deterministic_json)
                        .collect(),
                ),
            ),
            // The obs dump is built with `to_json(deterministic_only =
            // true)`, which drops every wall-clock histogram — what's left
            // (work-unit spans, counters, gauges) is schedule-independent.
            ("obs", self.obs.clone().unwrap_or(Json::Null)),
        ])
        .render()
    }

    /// The CI sanity gate: every deterministic aggregate must be finite and
    /// non-negative, and the bounded ones (regret ratio, acceptance rate)
    /// must not exceed 1.
    ///
    /// Returns the list of violations (empty means the report is healthy).
    /// Perf figures are exempt — latency percentiles are legitimately NaN
    /// for workloads that bypass the instrumented simulation loop.
    ///
    /// Tolerances are **scale-relative** (`gate_tolerance`): a lower
    /// bound is breached only when the value is negative beyond
    /// `1e-9 · max(1, |stat|)`, so full-scale revenue/welfare sums in the
    /// thousands cannot false-positive on f64 accumulation noise, while
    /// unit-scale rates keep the old absolute `1e-9` bar.
    #[must_use]
    pub fn validate(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let check_stat = |violations: &mut Vec<String>,
                          place: &str,
                          what: &str,
                          stat: &AggStat,
                          upper: Option<f64>| {
            let tolerance = gate_tolerance(stat_scale(stat));
            for (part, v) in [("mean", stat.mean), ("min", stat.min), ("max", stat.max)] {
                if !v.is_finite() {
                    violations.push(format!("{place}: {what} {part} is not finite ({v})"));
                } else if v < -tolerance {
                    violations.push(format!("{place}: {what} {part} is negative ({v})"));
                } else if upper.is_some_and(|bound| v > bound + tolerance) {
                    violations.push(format!("{place}: {what} {part} exceeds 1 ({v})"));
                }
            }
        };
        for exp in &self.experiments {
            for cell in &exp.cells {
                let place = format!("{} / {}", exp.name, cell.label);
                // (what, stat, upper bound) — regret and revenue are only
                // bounded below; ratios and rates live in [0, 1].
                let mut gates: Vec<(String, &AggStat, Option<f64>)> = vec![
                    (
                        "cumulative regret".to_owned(),
                        &cell.cumulative_regret,
                        None,
                    ),
                    ("revenue".to_owned(), &cell.revenue, None),
                    ("regret ratio".to_owned(), &cell.regret_ratio, Some(1.0)),
                    (
                        "acceptance rate".to_owned(),
                        &cell.acceptance_rate,
                        Some(1.0),
                    ),
                ];
                for cp in &cell.checkpoints {
                    gates.push((
                        format!("regret at t={}", cp.round),
                        &cp.cumulative_regret,
                        None,
                    ));
                    gates.push((
                        format!("ratio at t={}", cp.round),
                        &cp.regret_ratio,
                        Some(1.0),
                    ));
                }
                for (what, stat, upper) in gates {
                    check_stat(&mut violations, &place, &what, stat, upper);
                }
            }
        }
        for cell in &self.serve {
            let place = format!("serve / {}", cell.label);
            for (what, stat, upper) in [
                ("revenue", &cell.revenue, None),
                ("regret", &cell.regret, None),
                ("acceptance rate", &cell.accept_rate, Some(1.0)),
            ] {
                check_stat(&mut violations, &place, what, stat, upper);
            }
            // Throughput sanity: a cell that served anything must report a
            // positive quotes/sec, and overload shedding must never starve
            // the service completely.
            let throughput = cell.perf.quotes_per_sec;
            if cell.quotes_served > 0 && (!throughput.is_finite() || throughput <= 0.0) {
                violations.push(format!(
                    "{place}: quotes/sec is not positive ({throughput})"
                ));
            }
            if cell.quotes_served == 0 {
                violations.push(format!("{place}: served no quotes at all"));
            }
            let shed_rate = cell.shed_rate();
            if !shed_rate.is_finite() || shed_rate >= 1.0 {
                violations.push(format!("{place}: shed rate reached 100% ({shed_rate})"));
            }
        }
        // The v5 headline summary must agree with the serve section it was
        // folded from: present exactly when serve cells are, and positive
        // whenever anything was served.  (Pre-v5 files legitimately carry
        // serve cells without a summary.)
        match &self.perf {
            Some(perf) => {
                let total: u64 = self.serve.iter().map(|c| c.quotes_served).sum();
                if perf.serve_quotes != total {
                    violations.push(format!(
                        "perf summary: serve_quotes {} disagrees with the serve section's {}",
                        perf.serve_quotes, total
                    ));
                }
                if perf.serve_quotes > 0
                    && (!perf.serve_quotes_per_sec.is_finite() || perf.serve_quotes_per_sec <= 0.0)
                {
                    violations.push(format!(
                        "perf summary: grid quotes/sec is not positive ({})",
                        perf.serve_quotes_per_sec
                    ));
                }
            }
            None => {
                if !self.serve.is_empty() && self.schema_version >= 5 {
                    violations.push(
                        "perf summary: a v5 report with serve cells must carry the headline \
                         summary"
                            .to_owned(),
                    );
                }
            }
        }
        for cell in &self.auction {
            let place = format!("auction / {}", cell.label);
            for (what, stat, upper) in [
                ("revenue", &cell.revenue, None),
                ("baseline revenue", &cell.baseline_revenue, None),
                ("welfare", &cell.welfare, None),
                ("reserve hit rate", &cell.hit_rate, Some(1.0)),
            ] {
                check_stat(&mut violations, &place, what, stat, upper);
            }
            if cell.auctions == 0 {
                violations.push(format!("{place}: settled no auction rounds at all"));
            }
            if cell.sales == 0 {
                violations.push(format!("{place}: sold nothing in any round"));
            }
            // A sale never prices above the winning bid, so welfare
            // dominates revenue identically per round and in every sum.
            // The comparison tolerance scales with the pair's magnitude.
            let tolerance = gate_tolerance(cell.welfare.mean.abs().max(cell.revenue.mean.abs()));
            if cell.welfare.mean + tolerance < cell.revenue.mean {
                violations.push(format!(
                    "{place}: welfare {} fell below revenue {}",
                    cell.welfare.mean, cell.revenue.mean
                ));
            }
            let throughput = cell.perf.rounds_per_sec;
            if cell.auctions > 0 && (!throughput.is_finite() || throughput <= 0.0) {
                violations.push(format!(
                    "{place}: rounds/sec is not positive ({throughput})"
                ));
            }
            // The reserve-uplift gate of the auction workload: at full
            // scale, every *learned* reserve policy must earn at least the
            // second-price-no-reserve baseline in the thin-competition
            // cells (≤ 2 bidders) — the regime personalized reserves exist
            // for.  With thicker competition the second bid already
            // extracts the surplus and the optimal reserve is non-binding,
            // so those cells are gated only on the invariants above.
            // Quick-scale horizons are too short for the learners to
            // converge, so the gate is a full-scale contract.
            if self.scale == "full" && cell.is_learned_policy() && cell.bidders <= 2 {
                let baseline = cell.baseline_revenue.mean;
                let tolerance = gate_tolerance(baseline.abs().max(cell.revenue.mean.abs()));
                if cell.revenue.mean + tolerance < baseline {
                    violations.push(format!(
                        "{place}: learned-reserve revenue {} fell below the no-reserve \
                         second-price baseline {}",
                        cell.revenue.mean, baseline
                    ));
                }
            }
        }
        for cell in &self.drift {
            let place = format!("drift / {}", cell.label);
            for (what, stat, upper) in [
                ("revenue", &cell.revenue, None),
                ("regret", &cell.regret, None),
                ("post-shift regret", &cell.post_shift_regret, None),
                ("acceptance rate", &cell.accept_rate, Some(1.0)),
            ] {
                check_stat(&mut violations, &place, what, stat, upper);
            }
            if cell.rounds == 0 {
                violations.push(format!("{place}: served no rounds at all"));
            }
            if cell.sales == 0 {
                violations.push(format!("{place}: sold nothing in any round"));
            }
            let throughput = cell.perf.quotes_per_sec;
            if cell.rounds > 0 && (!throughput.is_finite() || throughput <= 0.0) {
                violations.push(format!(
                    "{place}: quotes/sec is not positive ({throughput})"
                ));
            }
            // The drift-adaptivity gate: at full scale, in every
            // piecewise-stationary cell, the drift-aware policies must beat
            // the static mechanism's post-shift regret (the static
            // mechanism's knowledge set excludes the moved θ*, so its
            // conservative prices go stale; restart and discounting exist
            // to recover exactly this).  Environment seeds are shared
            // across the row's policy columns, so the comparison is over
            // identical markets.  Quick-scale phases are too short for the
            // comparison to separate, so the gate is a full-scale contract.
            if self.scale == "full" && cell.kind == "piecewise" && cell.policy != "static" {
                let static_cell = self.drift.iter().find(|other| {
                    other.kind == cell.kind
                        && other.magnitude == cell.magnitude
                        && other.policy == "static"
                });
                if let Some(static_cell) = static_cell {
                    let aware = cell.post_shift_regret.mean;
                    let stationary = static_cell.post_shift_regret.mean;
                    if aware >= stationary {
                        violations.push(format!(
                            "{place}: post-shift regret {aware} did not beat the static \
                             mechanism's {stationary}"
                        ));
                    }
                }
            }
        }
        for cell in &self.longhaul {
            let place = format!("longhaul / {}", cell.label);
            for (what, stat, upper) in [
                ("revenue", &cell.revenue, None),
                ("regret", &cell.regret, None),
                ("acceptance rate", &cell.accept_rate, Some(1.0)),
            ] {
                check_stat(&mut violations, &place, what, stat, upper);
            }
            if cell.quotes_served == 0 {
                violations.push(format!("{place}: served no quotes at all"));
            }
            // The residency contract of the paging layer: the run records
            // the high-water mark across every wave of both the original
            // and the restored service, and it must stay under the cap.
            if cell.max_resident > cell.resident_capacity {
                violations.push(format!(
                    "{place}: {} tenants resident at the high-water mark, above the \
                     configured cap of {}",
                    cell.max_resident, cell.resident_capacity
                ));
            }
            // A longhaul run that wrote no WAL segments never exercised the
            // checkpoint path it exists to measure.
            if cell.wal_segments == 0 {
                violations.push(format!("{place}: wrote no WAL segments at all"));
            }
            let throughput = cell.perf.quotes_per_sec;
            if cell.quotes_served > 0 && (!throughput.is_finite() || throughput <= 0.0) {
                violations.push(format!(
                    "{place}: quotes/sec is not positive ({throughput})"
                ));
            }
            // Restore latency and memory-per-tenant are wall-clock figures,
            // but a successful run must still report them as finite,
            // non-negative numbers for the CI columns to mean anything.
            for (what, v) in [
                ("restore latency µs", cell.perf.restore_latency_micros),
                ("memory per tenant", cell.perf.memory_per_tenant_bytes),
            ] {
                if !v.is_finite() || v < 0.0 {
                    violations.push(format!("{place}: {what} is not a sane figure ({v})"));
                }
            }
        }
        for cell in &self.privacy {
            let place = format!("privacy / {}", cell.label);
            for (what, stat, upper) in [
                ("revenue", &cell.revenue, None),
                ("compensation", &cell.compensation, None),
                ("epsilon spent", &cell.epsilon_spent, None),
                ("acceptance rate", &cell.accept_rate, Some(1.0)),
            ] {
                check_stat(&mut violations, &place, what, stat, upper);
            }
            if cell.quotes_served == 0 {
                violations.push(format!("{place}: served no quotes at all"));
            }
            // The arbitrage-free accounting identity: the shard lifts every
            // reserve to cover owner payouts, so cumulative compensation can
            // never exceed cumulative revenue.
            let tolerance =
                gate_tolerance(cell.revenue.mean.abs().max(cell.compensation.mean.abs()));
            if cell.compensation.mean > cell.revenue.mean + tolerance {
                violations.push(format!(
                    "{place}: owner compensation {} exceeded revenue {}",
                    cell.compensation.mean, cell.revenue.mean
                ));
            }
            // Retirement is sticky, so the per-wave exhaustion trajectory
            // must be monotone non-decreasing...
            if cell
                .exhausted_trajectory
                .windows(2)
                .any(|pair| pair[1] < pair[0])
            {
                violations.push(format!(
                    "{place}: the owners-exhausted trajectory decreased — retirement \
                     must be sticky"
                ));
            }
            // ...and the grid is sized so budgets actually bind: a run where
            // no owner ever exhausted measured nothing.
            if cell.owners_exhausted == 0 {
                violations.push(format!(
                    "{place}: no owner ever exhausted her budget — the cell never \
                     exercised the throttling it exists to measure"
                ));
            } else {
                // Exhaustion must measurably throttle supply: the second
                // half of the trace serves strictly fewer quotes.
                if cell.quoted_late >= cell.quoted_early {
                    violations.push(format!(
                        "{place}: budget exhaustion did not throttle supply ({} quotes \
                         served late vs {} early)",
                        cell.quoted_late, cell.quoted_early
                    ));
                }
                if cell.throttled == 0 {
                    violations.push(format!(
                        "{place}: owners exhausted but no quote was ever refused"
                    ));
                }
            }
            // A privacy run that wrote no WAL segments never exercised the
            // ledger-persistence path it exists to verify.
            if cell.wal_segments == 0 {
                violations.push(format!("{place}: wrote no WAL segments at all"));
            }
            let throughput = cell.perf.quotes_per_sec;
            if cell.quotes_served > 0 && (!throughput.is_finite() || throughput <= 0.0) {
                violations.push(format!(
                    "{place}: quotes/sec is not positive ({throughput})"
                ));
            }
            if !cell.perf.restore_latency_micros.is_finite()
                || cell.perf.restore_latency_micros < 0.0
            {
                violations.push(format!(
                    "{place}: restore latency µs is not a sane figure ({})",
                    cell.perf.restore_latency_micros
                ));
            }
        }
        // The v8 obs section, when present, must be the deterministic
        // registry dump: an object whose sections are themselves objects.
        if let Some(obs) = &self.obs {
            match obs {
                Json::Obj(pairs) => {
                    for (key, section) in pairs {
                        if !matches!(section, Json::Obj(_)) {
                            violations.push(format!("obs: section `{key}` is not an object"));
                        }
                    }
                }
                _ => violations.push("obs: the section is not an object".to_owned()),
            }
        }
        violations
    }
}

/// The magnitude scale a gated aggregate lives at (at least 1, so
/// unit-scale rates keep the absolute bar).
fn stat_scale(stat: &AggStat) -> f64 {
    let finite_abs = |v: f64| if v.is_finite() { v.abs() } else { 0.0 };
    finite_abs(stat.mean)
        .max(finite_abs(stat.min))
        .max(finite_abs(stat.max))
}

/// Scale-relative validation tolerance: `1e-9 · max(1, scale)`.  A sum in
/// the thousands accumulates f64 rounding noise far above an absolute
/// `1e-9`, so lower-bound gates scale with the magnitude of the statistic
/// they guard; unit-scale figures (ratios, rates) keep the old bar.
fn gate_tolerance(scale: f64) -> f64 {
    1e-9 * scale.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stat(mean: f64) -> AggStat {
        AggStat {
            mean,
            std: 0.1,
            ci95_half: 0.05,
            min: mean - 0.2,
            max: mean + 0.2,
        }
    }

    fn sample_cell(label: &str) -> CellAggregate {
        CellAggregate {
            label: label.to_owned(),
            mechanism_name: "ellipsoid".to_owned(),
            reps: 3,
            rounds: 500,
            cumulative_regret: sample_stat(12.5),
            regret_ratio: sample_stat(0.4),
            revenue: sample_stat(100.0),
            acceptance_rate: sample_stat(0.8),
            market_value_per_round: MeanStd {
                mean: 3.8,
                std: 1.2,
            },
            reserve_price_per_round: MeanStd {
                mean: 3.3,
                std: 0.7,
            },
            posted_price_per_round: MeanStd {
                mean: 3.6,
                std: 1.6,
            },
            regret_per_round: MeanStd {
                mean: 0.16,
                std: 0.8,
            },
            checkpoints: vec![CheckpointAggregate {
                round: 100,
                cumulative_regret: sample_stat(5.0),
                regret_ratio: sample_stat(0.5),
            }],
            perf: CellPerf {
                wall_clock_secs: 1.5,
                rounds_per_sec: 1000.0,
                latency_mean_micros: 12.0,
                latency_p50_micros: 10.0,
                latency_p99_micros: 40.0,
                latency_max_micros: 90.0,
                memory_bytes: 4096,
            },
        }
    }

    fn sample_serve_cell(label: &str) -> ServeCellReport {
        ServeCellReport {
            label: label.to_owned(),
            mix: "uniform".to_owned(),
            tenants: 16,
            shards: 8,
            waves: 24,
            reps: 2,
            workers: 4,
            quotes_served: 768,
            observations: 768,
            sales: 600,
            shed: 12,
            rejected: 0,
            revenue: sample_stat(420.0),
            regret: sample_stat(9.5),
            accept_rate: sample_stat(0.78),
            perf: ServePerf {
                wall_clock_secs: 0.8,
                quotes_per_sec: 50_000.0,
                latency_mean_micros: 4.0,
                latency_p50_micros: 3.5,
                latency_p99_micros: 11.0,
            },
        }
    }

    fn sample_auction_cell(label: &str) -> AuctionCellReport {
        AuctionCellReport {
            label: label.to_owned(),
            distribution: "uniform".to_owned(),
            policy: "session".to_owned(),
            tenants: 4,
            bidders: 2,
            shards: 4,
            waves: 48,
            reps: 2,
            workers: 4,
            auctions: 384,
            sales: 300,
            reserve_hits: 120,
            revenue: sample_stat(210.0),
            baseline_revenue: sample_stat(180.0),
            welfare: sample_stat(260.0),
            hit_rate: sample_stat(0.4),
            perf: AuctionPerf {
                wall_clock_secs: 0.4,
                rounds_per_sec: 80_000.0,
                // Finite so the round-trip test's `assert_eq!` can compare
                // the struct (NaN would fail PartialEq against itself).
                latency_mean_micros: 3.4,
                latency_p50_micros: 3.0,
                latency_p99_micros: 9.0,
            },
        }
    }

    fn sample_drift_cell(policy: &str, post_shift_mean: f64) -> DriftCellReport {
        DriftCellReport {
            label: format!("kind=piecewise/mag=1.0/policy={policy}"),
            kind: "piecewise".to_owned(),
            magnitude: 1.0,
            policy: policy.to_owned(),
            tenants: 4,
            shards: 4,
            waves: 90,
            reps: 2,
            workers: 4,
            rounds: 720,
            sales: 500,
            drift_fires: if policy == "restart" { 8 } else { 0 },
            drift_restarts: if policy == "restart" { 8 } else { 0 },
            revenue: sample_stat(300.0),
            regret: sample_stat(40.0),
            post_shift_regret: sample_stat(post_shift_mean),
            accept_rate: sample_stat(0.7),
            perf: DriftPerf {
                wall_clock_secs: 0.3,
                quotes_per_sec: 60_000.0,
                latency_mean_micros: 3.2,
                latency_p50_micros: 3.0,
                latency_p99_micros: 8.0,
            },
        }
    }

    fn sample_longhaul_cell(label: &str) -> LonghaulCellReport {
        LonghaulCellReport {
            label: label.to_owned(),
            tenants: 24,
            shards: 4,
            waves: 24,
            reps: 2,
            workers: 4,
            resident_capacity: 8,
            wal_segment_size: 8,
            quotes_served: 480,
            observations: 480,
            sales: 300,
            evictions: 64,
            rehydrations: 60,
            wal_segments: 14,
            max_resident: 8,
            revenue: sample_stat(150.0),
            regret: sample_stat(20.0),
            accept_rate: sample_stat(0.65),
            perf: LonghaulPerf {
                wall_clock_secs: 0.5,
                quotes_per_sec: 40_000.0,
                restore_latency_micros: 850.0,
                memory_per_tenant_bytes: 2_048.0,
            },
        }
    }

    fn sample_privacy_cell(label: &str) -> PrivacyCellReport {
        PrivacyCellReport {
            label: label.to_owned(),
            tenants: 4,
            shards: 2,
            waves: 16,
            reps: 2,
            workers: 4,
            owners: 4,
            epsilon_budget: 1.5,
            requests: 128,
            quotes_served: 90,
            observations: 90,
            sales: 55,
            throttled: 38,
            arbitrage_clamps: 3,
            owners_exhausted: 28,
            wal_segments: 10,
            quoted_early: 60,
            quoted_late: 30,
            exhausted_trajectory: vec![0, 0, 2, 6, 12, 18, 24, 28],
            revenue: sample_stat(40.0),
            compensation: sample_stat(4.0),
            epsilon_spent: sample_stat(22.0),
            accept_rate: sample_stat(0.6),
            perf: PrivacyPerf {
                wall_clock_secs: 0.4,
                quotes_per_sec: 35_000.0,
                restore_latency_micros: 700.0,
            },
        }
    }

    fn sample_report() -> BenchReport {
        let serve = vec![sample_serve_cell("tenants=16/mix=uniform")];
        BenchReport {
            schema_version: SCHEMA_VERSION,
            name: "all".to_owned(),
            git_describe: "abc1234-dirty".to_owned(),
            scale: "quick".to_owned(),
            workers: 4,
            reps: 3,
            wall_clock_secs: 7.25,
            experiments: vec![ExperimentReport {
                name: "fig4/n=20".to_owned(),
                cells: vec![sample_cell("pure version"), sample_cell("with reserve")],
            }],
            perf: PerfSummary::from_serve(&serve),
            serve,
            auction: vec![sample_auction_cell("bidders=2/dist=uniform/policy=session")],
            drift: vec![
                sample_drift_cell("static", 30.0),
                sample_drift_cell("restart", 10.0),
                sample_drift_cell("discounted", 12.0),
            ],
            longhaul: vec![sample_longhaul_cell("tenants=24/cap=8")],
            privacy: vec![sample_privacy_cell("budget=1.5/owners=4")],
            obs: Some(Json::obj(vec![
                (
                    "counters",
                    Json::obj(vec![("quotes_served_total", Json::Num(768.0))]),
                ),
                ("gauges", Json::obj(vec![("tenants", Json::Num(16.0))])),
                (
                    "histograms",
                    Json::obj(vec![(
                        "shard.quote.work_items",
                        Json::obj(vec![
                            ("count", Json::Num(768.0)),
                            ("sum", Json::Num(768.0)),
                            (
                                "buckets",
                                Json::Arr(vec![Json::Arr(vec![Json::Num(1.0), Json::Num(768.0)])]),
                            ),
                        ]),
                    )]),
                ),
            ])),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let rendered = report.to_json().render_pretty();
        let reparsed =
            BenchReport::from_json(&Json::parse(&rendered).expect("parse")).expect("from_json");
        assert_eq!(reparsed, report);
        // A second render is byte-identical (stable schema).
        assert_eq!(reparsed.to_json().render_pretty(), rendered);
    }

    #[test]
    fn fingerprint_ignores_perf_and_metadata() {
        let mut a = sample_report();
        let mut b = sample_report();
        b.workers = 1;
        b.wall_clock_secs = 99.0;
        b.git_describe = "elsewhere".to_owned();
        b.experiments[0].cells[0].perf.rounds_per_sec = 1.0;
        // Serve/auction throughput, latency, and the drain worker count are
        // wall-clock/schedule facts, not aggregates.
        b.serve[0].workers = 1;
        b.serve[0].perf.quotes_per_sec = 3.0;
        b.serve[0].perf.latency_p99_micros = 9_999.0;
        b.auction[0].workers = 1;
        b.auction[0].perf.rounds_per_sec = 5.0;
        b.drift[0].workers = 1;
        b.drift[0].perf.quotes_per_sec = 7.0;
        b.longhaul[0].workers = 1;
        b.longhaul[0].perf.restore_latency_micros = 123_456.0;
        b.longhaul[0].perf.memory_per_tenant_bytes = 1.0;
        b.privacy[0].workers = 1;
        b.privacy[0].perf.quotes_per_sec = 2.0;
        b.privacy[0].perf.restore_latency_micros = 9.0;
        // The v5 headline summary is pure wall clock: invisible too.
        b.perf.as_mut().expect("summary").serve_quotes_per_sec = 1.0;
        assert_eq!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        // But it does see the aggregates — simulation, serve, and auction
        // alike.
        a.experiments[0].cells[0].cumulative_regret.mean += 1.0;
        assert_ne!(a.deterministic_fingerprint(), b.deterministic_fingerprint());
        let mut c = sample_report();
        c.serve[0].revenue.mean += 1.0;
        assert_ne!(c.deterministic_fingerprint(), b.deterministic_fingerprint());
        let mut d = sample_report();
        d.auction[0].reserve_hits += 1;
        assert_ne!(d.deterministic_fingerprint(), b.deterministic_fingerprint());
        let mut e = sample_report();
        e.drift[0].post_shift_regret.mean += 1.0;
        assert_ne!(e.deterministic_fingerprint(), b.deterministic_fingerprint());
        // The longhaul paging/WAL counters are deterministic aggregates, so
        // the fingerprint must see them.
        let mut f = sample_report();
        f.longhaul[0].evictions += 1;
        assert_ne!(f.deterministic_fingerprint(), b.deterministic_fingerprint());
        // The privacy ledger counters are deterministic aggregates too —
        // ε totals, exhaustion counts, and the per-wave trajectory.
        let mut g = sample_report();
        g.privacy[0].owners_exhausted += 1;
        assert_ne!(g.deterministic_fingerprint(), b.deterministic_fingerprint());
        let mut h = sample_report();
        h.privacy[0].exhausted_trajectory[3] += 1;
        assert_ne!(h.deterministic_fingerprint(), b.deterministic_fingerprint());
    }

    #[test]
    fn v1_through_v6_reports_without_newer_sections_still_parse() {
        let mut report = sample_report();
        report.serve.clear();
        report.auction.clear();
        report.drift.clear();
        report.longhaul.clear();
        report.privacy.clear();
        report.perf = None;
        let mut rendered = report.to_json();
        // Simulate a v1 file: no `serve`/`auction`/`drift`/`longhaul`/
        // `privacy` keys, version 1.
        if let Json::Obj(pairs) = &mut rendered {
            pairs.retain(|(key, _)| {
                key != "serve"
                    && key != "auction"
                    && key != "drift"
                    && key != "longhaul"
                    && key != "privacy"
            });
            pairs[0].1 = Json::Num(1.0);
        }
        let reparsed = BenchReport::from_json(&rendered).expect("v1 parses");
        assert_eq!(reparsed.schema_version, 1);
        assert!(reparsed.serve.is_empty());
        assert!(reparsed.auction.is_empty());
        assert!(reparsed.drift.is_empty());
        assert!(reparsed.longhaul.is_empty());
        assert!(reparsed.privacy.is_empty());
        assert!(reparsed.perf.is_none());

        // Simulate a v2 file: a `serve` section but no `auction`/`drift`
        // (and no v5 `perf` summary, no v6 `longhaul`, no v7 `privacy`).
        let mut v2 = sample_report();
        v2.auction.clear();
        v2.drift.clear();
        v2.longhaul.clear();
        v2.privacy.clear();
        let mut rendered = v2.to_json();
        if let Json::Obj(pairs) = &mut rendered {
            pairs.retain(|(key, _)| {
                key != "auction"
                    && key != "drift"
                    && key != "longhaul"
                    && key != "privacy"
                    && key != "perf"
            });
            pairs[0].1 = Json::Num(2.0);
        }
        let reparsed = BenchReport::from_json(&rendered).expect("v2 parses");
        assert_eq!(reparsed.schema_version, 2);
        assert_eq!(reparsed.serve.len(), 1);
        assert!(reparsed.auction.is_empty());
        assert!(reparsed.drift.is_empty());
        assert!(reparsed.perf.is_none());
        assert!(
            reparsed.validate().is_empty(),
            "a pre-v5 file with serve cells but no summary is healthy"
        );

        // Simulate a v3 file: serve + auction but no `drift`.
        let mut v3 = sample_report();
        v3.drift.clear();
        v3.longhaul.clear();
        v3.privacy.clear();
        let mut rendered = v3.to_json();
        if let Json::Obj(pairs) = &mut rendered {
            pairs.retain(|(key, _)| {
                key != "drift" && key != "longhaul" && key != "privacy" && key != "perf"
            });
            pairs[0].1 = Json::Num(3.0);
        }
        let reparsed = BenchReport::from_json(&rendered).expect("v3 parses");
        assert_eq!(reparsed.schema_version, 3);
        assert_eq!(reparsed.auction.len(), 1);
        assert!(reparsed.drift.is_empty());
        assert!(reparsed.longhaul.is_empty());
        assert!(reparsed.perf.is_none());

        // Simulate a v4 file: the pre-v5 sections but no top-level `perf`
        // summary, no `longhaul`, no `privacy`.
        let mut rendered = sample_report().to_json();
        if let Json::Obj(pairs) = &mut rendered {
            pairs.retain(|(key, _)| key != "perf" && key != "longhaul" && key != "privacy");
            pairs[0].1 = Json::Num(4.0);
        }
        let reparsed = BenchReport::from_json(&rendered).expect("v4 parses");
        assert_eq!(reparsed.schema_version, 4);
        assert_eq!(reparsed.drift.len(), 3);
        assert!(reparsed.longhaul.is_empty());
        assert!(reparsed.perf.is_none());
        assert!(reparsed.validate().is_empty());

        // Simulate a v5 file: everything except the v6 `longhaul` and v7
        // `privacy` sections.
        let mut rendered = sample_report().to_json();
        if let Json::Obj(pairs) = &mut rendered {
            pairs.retain(|(key, _)| key != "longhaul" && key != "privacy");
            pairs[0].1 = Json::Num(5.0);
        }
        let reparsed = BenchReport::from_json(&rendered).expect("v5 parses");
        assert_eq!(reparsed.schema_version, 5);
        assert!(reparsed.longhaul.is_empty());
        assert!(reparsed.privacy.is_empty());
        assert!(reparsed.perf.is_some());
        assert!(reparsed.validate().is_empty());

        // Simulate a v6 file: everything except the v7 `privacy` section.
        let mut rendered = sample_report().to_json();
        if let Json::Obj(pairs) = &mut rendered {
            pairs.retain(|(key, _)| key != "privacy");
            pairs[0].1 = Json::Num(6.0);
        }
        let reparsed = BenchReport::from_json(&rendered).expect("v6 parses");
        assert_eq!(reparsed.schema_version, 6);
        assert_eq!(reparsed.longhaul.len(), 1);
        assert!(reparsed.privacy.is_empty());
        assert!(reparsed.perf.is_some());
        assert!(reparsed.validate().is_empty());
    }

    #[test]
    fn v7_reports_without_obs_or_mean_latency_still_parse() {
        // Simulate a v7 file: every section, but no top-level `obs` and no
        // `latency_mean_micros` in the auction/drift perf objects.
        let mut rendered = sample_report().to_json();
        if let Json::Obj(pairs) = &mut rendered {
            pairs.retain(|(key, _)| key != "obs");
            pairs[0].1 = Json::Num(7.0);
            for (key, section) in pairs.iter_mut() {
                if key != "auction" && key != "drift" {
                    continue;
                }
                let Json::Arr(cells) = section else {
                    panic!("{key} is an array")
                };
                for cell in cells {
                    let Json::Obj(fields) = cell else {
                        panic!("cell is an object")
                    };
                    for (name, field) in fields.iter_mut() {
                        if name == "perf" {
                            let Json::Obj(perf) = field else {
                                panic!("perf is an object")
                            };
                            perf.retain(|(k, _)| k != "latency_mean_micros");
                        }
                    }
                }
            }
        }
        let reparsed = BenchReport::from_json(&rendered).expect("v7 parses");
        assert_eq!(reparsed.schema_version, 7);
        assert!(reparsed.obs.is_none(), "no obs section in a v7 file");
        // The additive perf column reads back as NaN, like every other
        // absent wall-clock figure, and validate() stays green.
        assert!(reparsed.auction[0].perf.latency_mean_micros.is_nan());
        assert!(reparsed.drift[0].perf.latency_mean_micros.is_nan());
        assert!(reparsed.validate().is_empty());
    }

    #[test]
    fn validate_gates_the_obs_section_shape() {
        // A malformed obs section (not an object, or with non-object
        // sections) is a violation; a well-formed one is healthy.
        assert!(sample_report().validate().is_empty());
        let mut scalar = sample_report();
        scalar.obs = Some(Json::Num(1.0));
        assert!(scalar
            .validate()
            .iter()
            .any(|v| v.contains("obs") && v.contains("not an object")));
        let mut bad_section = sample_report();
        bad_section.obs = Some(Json::obj(vec![("counters", Json::Arr(Vec::new()))]));
        assert!(bad_section
            .validate()
            .iter()
            .any(|v| v.contains("`counters` is not an object")));
    }

    #[test]
    fn perf_summary_folds_the_serve_grid_and_gates_the_floor() {
        let report = sample_report();
        let perf = report.perf.as_ref().expect("serve cells imply a summary");
        assert_eq!(perf.serve_quotes, 768);
        assert!((perf.serve_quotes_per_sec - 50_000.0).abs() < 1e-6);
        assert!((perf.serve_min_cell_quotes_per_sec - 50_000.0).abs() < 1e-6);
        assert!((perf.serve_drain_secs - 768.0 / 50_000.0).abs() < 1e-12);
        // No serve cells, no summary.
        assert!(PerfSummary::from_serve(&[]).is_none());

        // The floor gate: a 30% tolerance below 60k is 42k, which 50k
        // clears; a floor of 80k (bar 56k) it does not.
        let floor = PerfFloor {
            serve_quotes_per_sec: 60_000.0,
            max_regression: 0.3,
        };
        assert!(floor.check(&report).expect("passes").contains("passed"));
        let tight = PerfFloor {
            serve_quotes_per_sec: 80_000.0,
            max_regression: 0.3,
        };
        assert!(tight.check(&report).unwrap_err().contains("fell below"));
        // A report without serve cells cannot be gated.
        let mut simulation_only = sample_report();
        simulation_only.serve.clear();
        simulation_only.perf = None;
        assert!(floor
            .check(&simulation_only)
            .unwrap_err()
            .contains("no serve cells"));

        // Floor files parse strictly.
        let parsed = PerfFloor::from_json(
            &Json::parse(r#"{"serve_quotes_per_sec": 1500.0, "max_regression": 0.3}"#).unwrap(),
        )
        .expect("a valid floor file");
        assert_eq!(parsed.serve_quotes_per_sec, 1_500.0);
        assert_eq!(parsed.max_regression, 0.3);
        assert!(PerfFloor::from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(PerfFloor::from_json(
            &Json::parse(r#"{"serve_quotes_per_sec": -1.0, "max_regression": 0.3}"#).unwrap()
        )
        .unwrap_err()
        .contains("positive"));
        assert!(PerfFloor::from_json(
            &Json::parse(r#"{"serve_quotes_per_sec": 10.0, "max_regression": 1.5}"#).unwrap()
        )
        .unwrap_err()
        .contains("fraction"));
    }

    #[test]
    fn validate_gates_the_longhaul_residency_and_wal_contracts() {
        assert!(sample_report().validate().is_empty());

        // The resident high-water mark must respect the configured cap.
        let mut over = sample_report();
        over.longhaul[0].max_resident = over.longhaul[0].resident_capacity + 1;
        assert!(over
            .validate()
            .iter()
            .any(|v| v.contains("above the configured cap")));

        // A longhaul run must actually exercise the WAL.
        let mut unwritten = sample_report();
        unwritten.longhaul[0].wal_segments = 0;
        assert!(unwritten
            .validate()
            .iter()
            .any(|v| v.contains("wrote no WAL segments")));

        // A dead cell fails.
        let mut dead = sample_report();
        dead.longhaul[0].quotes_served = 0;
        assert!(dead
            .validate()
            .iter()
            .any(|v| v.contains("longhaul /") && v.contains("served no quotes")));

        // The report's perf columns must be sane numbers.
        let mut nan_restore = sample_report();
        nan_restore.longhaul[0].perf.restore_latency_micros = f64::NAN;
        assert!(nan_restore
            .validate()
            .iter()
            .any(|v| v.contains("restore latency")));
        let mut negative_memory = sample_report();
        negative_memory.longhaul[0].perf.memory_per_tenant_bytes = -1.0;
        assert!(negative_memory
            .validate()
            .iter()
            .any(|v| v.contains("memory per tenant")));
    }

    #[test]
    fn validate_gates_the_privacy_ledger_economics() {
        assert!(sample_report().validate().is_empty());

        // The accounting identity: owner payouts never exceed revenue.
        let mut upside_down = sample_report();
        upside_down.privacy[0].compensation = sample_stat(99.0);
        assert!(upside_down
            .validate()
            .iter()
            .any(|v| v.contains("compensation") && v.contains("exceeded revenue")));

        // Sticky retirement: the trajectory must never decrease.
        let mut unsticky = sample_report();
        unsticky.privacy[0].exhausted_trajectory[4] = 1;
        assert!(unsticky
            .validate()
            .iter()
            .any(|v| v.contains("trajectory decreased")));

        // The grid exists to measure exhaustion: a run where no budget ever
        // bound is a sizing bug, not a pass.
        let mut unbound = sample_report();
        unbound.privacy[0].owners_exhausted = 0;
        unbound.privacy[0].exhausted_trajectory = vec![0; 8];
        assert!(unbound
            .validate()
            .iter()
            .any(|v| v.contains("no owner ever exhausted")));

        // And exhaustion must measurably throttle the served supply.
        let mut unthrottled = sample_report();
        unthrottled.privacy[0].quoted_late = unthrottled.privacy[0].quoted_early;
        assert!(unthrottled
            .validate()
            .iter()
            .any(|v| v.contains("did not throttle supply")));
        let mut unrefused = sample_report();
        unrefused.privacy[0].throttled = 0;
        assert!(unrefused
            .validate()
            .iter()
            .any(|v| v.contains("no quote was ever refused")));

        // The ledger-persistence path must actually run.
        let mut unwritten = sample_report();
        unwritten.privacy[0].wal_segments = 0;
        assert!(unwritten
            .validate()
            .iter()
            .any(|v| v.contains("privacy /") && v.contains("wrote no WAL segments")));
    }

    #[test]
    fn validate_gates_the_perf_summary_consistency() {
        // A v5 report whose summary disagrees with its serve section fails.
        let mut skewed = sample_report();
        skewed.perf.as_mut().expect("summary").serve_quotes += 1;
        assert!(skewed
            .validate()
            .iter()
            .any(|v| v.contains("disagrees with the serve section")));
        // A v5 report with serve cells but a missing summary fails.
        let mut missing = sample_report();
        missing.perf = None;
        assert!(missing
            .validate()
            .iter()
            .any(|v| v.contains("must carry the headline summary")));
        // A summary claiming zero throughput over served quotes fails.
        let mut stalled = sample_report();
        stalled.perf.as_mut().expect("summary").serve_quotes_per_sec = 0.0;
        assert!(stalled
            .validate()
            .iter()
            .any(|v| v.contains("grid quotes/sec is not positive")));
    }

    #[test]
    fn validate_gates_drift_liveness_and_the_full_scale_post_shift_contract() {
        assert!(sample_report().validate().is_empty());

        // A dead drift cell fails.
        let mut dead = sample_report();
        dead.drift[0].rounds = 0;
        dead.drift[0].sales = 0;
        assert!(dead
            .validate()
            .iter()
            .any(|v| v.contains("drift /") && v.contains("served no rounds")));

        // The post-shift gate binds at full scale only, only in
        // piecewise-stationary cells, against the matching static column.
        let mut worse = sample_report();
        worse.drift[1].post_shift_regret = sample_stat(35.0); // above static's 30.0
        assert!(worse.validate().is_empty(), "quick scale is not gated");
        worse.scale = "full".to_owned();
        assert!(worse
            .validate()
            .iter()
            .any(|v| v.contains("did not beat the static")));
        // Rotation cells are not gated (no discrete shift to split at).
        worse.drift[1].kind = "rotation".to_owned();
        assert!(worse.validate().is_empty());
    }

    #[test]
    fn validation_tolerance_is_scale_relative() {
        // Unit scale: a negative 1e-8 is a genuine violation (the old
        // absolute bar).
        let mut small = sample_report();
        small.serve[0].accept_rate.min = -1e-8;
        assert!(small
            .validate()
            .iter()
            .any(|v| v.contains("acceptance rate") && v.contains("negative")));

        // Full scale: a revenue aggregate summing to thousands may carry
        // f64 accumulation noise far above 1e-9; a -1e-6 min against a
        // 10⁴-scale mean must NOT false-positive…
        let mut large = sample_report();
        large.serve[0].revenue = AggStat {
            mean: 12_500.0,
            std: 3.0,
            ci95_half: 1.5,
            min: -1e-6,
            max: 12_900.0,
        };
        assert!(
            large.validate().is_empty(),
            "scale-relative tolerance must absorb accumulation noise: {:?}",
            large.validate()
        );

        // …but the same -1e-6 at unit scale is still flagged.
        let mut unit = sample_report();
        unit.serve[0].revenue = AggStat {
            mean: 0.5,
            std: 0.1,
            ci95_half: 0.05,
            min: -1e-6,
            max: 0.9,
        };
        assert!(unit
            .validate()
            .iter()
            .any(|v| v.contains("revenue") && v.contains("negative")));

        // A genuinely negative full-scale aggregate still fails.
        let mut broken = sample_report();
        broken.serve[0].revenue = AggStat {
            mean: 12_500.0,
            std: 3.0,
            ci95_half: 1.5,
            min: -1.0,
            max: 12_900.0,
        };
        assert!(broken
            .validate()
            .iter()
            .any(|v| v.contains("revenue") && v.contains("negative")));
    }

    #[test]
    fn validate_gates_auction_invariants_and_the_full_scale_uplift() {
        assert!(sample_report().validate().is_empty());

        // Welfare below revenue is impossible arithmetic.
        let mut inverted = sample_report();
        inverted.auction[0].welfare = sample_stat(100.0);
        assert!(inverted
            .validate()
            .iter()
            .any(|v| v.contains("welfare") && v.contains("fell below revenue")));

        // A dead cell fails.
        let mut dead = sample_report();
        dead.auction[0].auctions = 0;
        dead.auction[0].sales = 0;
        assert!(dead
            .validate()
            .iter()
            .any(|v| v.contains("settled no auction rounds")));

        // Hit rates live in [0, 1].
        let mut excess = sample_report();
        excess.auction[0].hit_rate.max = 1.4;
        assert!(excess
            .validate()
            .iter()
            .any(|v| v.contains("reserve hit rate") && v.contains("exceeds 1")));

        // The learned-reserve uplift gate binds at full scale only, only
        // for learned policies, only under thin competition.
        let mut below = sample_report();
        below.auction[0].revenue = sample_stat(150.0); // below the 180 baseline
        assert!(below.validate().is_empty(), "quick scale is not gated");
        below.scale = "full".to_owned();
        assert!(below
            .validate()
            .iter()
            .any(|v| v.contains("fell below the no-reserve")));
        below.auction[0].policy = "static".to_owned();
        assert!(below.validate().is_empty(), "static cells are not gated");
        below.auction[0].policy = "empirical".to_owned();
        below.auction[0].bidders = 4;
        assert!(
            below.validate().is_empty(),
            "thick-competition cells are not gated"
        );
    }

    #[test]
    fn validate_gates_serve_throughput_and_shedding() {
        let healthy = sample_report();
        assert!(healthy.validate().is_empty());

        // A cell that served traffic but reports zero throughput is broken
        // instrumentation; a cell that served nothing is a broken workload.
        let mut stalled = sample_report();
        stalled.serve[0].perf.quotes_per_sec = 0.0;
        assert!(stalled.validate().iter().any(|v| v.contains("quotes/sec")));
        let mut starved = sample_report();
        starved.serve[0].quotes_served = 0;
        starved.serve[0].observations = 0;
        starved.serve[0].sales = 0;
        assert!(starved
            .validate()
            .iter()
            .any(|v| v.contains("served no quotes")));

        // Total shed (100%) fails; partial shed passes.
        let mut drowned = sample_report();
        drowned.serve[0].quotes_served = 0;
        drowned.serve[0].observations = 0;
        drowned.serve[0].rejected = 0;
        drowned.serve[0].shed = 500;
        assert!(drowned
            .validate()
            .iter()
            .any(|v| v.contains("shed rate reached 100%")));

        // The usual aggregate gates cover serve cells too.
        let mut nan_revenue = sample_report();
        nan_revenue.serve[0].revenue.mean = f64::NAN;
        assert!(nan_revenue
            .validate()
            .iter()
            .any(|v| v.contains("serve /") && v.contains("not finite")));
        let mut excess_rate = sample_report();
        excess_rate.serve[0].accept_rate.max = 1.3;
        assert!(excess_rate
            .validate()
            .iter()
            .any(|v| v.contains("serve /") && v.contains("exceeds 1")));
    }

    #[test]
    fn validate_flags_nan_negative_and_excess_ratio() {
        let healthy = sample_report();
        assert!(healthy.validate().is_empty());

        let mut nan = sample_report();
        nan.experiments[0].cells[0].cumulative_regret.mean = f64::NAN;
        assert!(nan.validate().iter().any(|v| v.contains("not finite")));

        let mut negative = sample_report();
        negative.experiments[0].cells[1].checkpoints[0]
            .cumulative_regret
            .min = -3.0;
        assert!(negative.validate().iter().any(|v| v.contains("negative")));

        let mut excess = sample_report();
        excess.experiments[0].cells[0].regret_ratio.max = 1.5;
        assert!(excess.validate().iter().any(|v| v.contains("exceeds 1")));

        // Revenue and acceptance rate are gated too (the success message
        // claims *all* aggregates are checked).
        let mut inf_revenue = sample_report();
        inf_revenue.experiments[0].cells[0].revenue.mean = f64::INFINITY;
        assert!(inf_revenue
            .validate()
            .iter()
            .any(|v| v.contains("revenue") && v.contains("not finite")));

        let mut bad_rate = sample_report();
        bad_rate.experiments[0].cells[1].acceptance_rate.max = 1.2;
        assert!(bad_rate
            .validate()
            .iter()
            .any(|v| v.contains("acceptance rate") && v.contains("exceeds 1")));

        // NaN perf latency (Lemma-8 cells) is fine.
        let mut nan_perf = sample_report();
        nan_perf.experiments[0].cells[0].perf.latency_p50_micros = f64::NAN;
        assert!(nan_perf.validate().is_empty());
    }

    #[test]
    fn from_json_rejects_newer_schemas_and_missing_fields() {
        let mut newer = sample_report();
        newer.schema_version = SCHEMA_VERSION + 1;
        let rendered = newer.to_json().render();
        assert!(BenchReport::from_json(&Json::parse(&rendered).unwrap())
            .unwrap_err()
            .contains("newer"));

        assert!(BenchReport::from_json(&Json::parse("{}").unwrap()).is_err());
        let no_cells = Json::parse(r#"{"schema_version":1,"name":"x"}"#).unwrap();
        assert!(BenchReport::from_json(&no_cells).is_err());
    }

    #[test]
    fn git_describe_returns_something() {
        let describe = git_describe();
        assert!(!describe.is_empty());
    }
}
