//! The `bench serve` workload: a closed-loop traffic generator driving the
//! sharded [`pdm_service::MarketService`] engine.
//!
//! Every cell of the serve grid spins up a multi-tenant service, registers
//! `tenants` independent pricing sessions, and pumps `waves` closed-loop
//! rounds through it: submit one price-quote request per participating
//! tenant, [`MarketService::drain`] on the requested worker count, answer
//! every quote with the buyer's accept/reject decision, drain again.  The
//! arrival mix decides *which* tenants participate in a wave:
//!
//! * **uniform** — every tenant, every wave (steady state);
//! * **hot-cold** — a hot quarter of the tenants every wave, the cold rest
//!   staggered over every fourth wave (skewed per-shard load);
//! * **bursty** — everyone for four waves, nobody for the next four, with a
//!   deliberately small queue so bursts overflow the bounded admission
//!   queue and exercise the shed path.
//!
//! Two kinds of results come out of a cell:
//!
//! * **Deterministic aggregates** — revenue, regret, acceptance rate, and
//!   the request counters.  These are per-tenant quantities folded in tenant
//!   order, so they are *byte-identical for any `--workers`*; the
//!   determinism suite pins that.  On top of the cross-worker guarantee,
//!   every run **replays each tenant's admitted request stream through a
//!   fresh serial [`PricingSession`]** and verifies the posted prices and
//!   per-tenant ledgers bit for bit — the sharded concurrent engine must
//!   price exactly like the paper's serial loop, or the bench fails.
//! * **Perf figures** — throughput (quotes served per second of service
//!   time) and p50/p99 per-request service latency, reported into the
//!   BENCH v2 schema and explicitly excluded from the determinism
//!   fingerprint.
//!
//! [`MarketService::drain`]: pdm_service::MarketService::drain
//! [`PricingSession`]: pdm_pricing::prelude::PricingSession

use crate::grid::derive_seed;
use crate::runner::AggStat;
use crate::table;
use crate::Scale;
use pdm_linalg::sampling;
use pdm_pricing::prelude::{RegretReport, StepOutcome};
use pdm_service::{
    MarketService, MetricRegistry, OutcomeReport, QueryRequest, ServiceConfig, ServiceError,
    ShardMetrics, TenantConfig, TenantId, TenantState,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Base seed of the serve grid; each cell derives its traffic streams from
/// `derive_seed(SERVE_SEED_BASE + cell_index, rep)`.
const SERVE_SEED_BASE: u64 = 0x5E4E;

/// Reserve prices are this fraction of the hidden market value, matching
/// the `reserve_fraction` convention of the synthetic environments.
const RESERVE_FRACTION: f64 = 0.6;

/// Which tenants send traffic in a given wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMix {
    /// Every tenant, every wave.
    Uniform,
    /// A hot quarter of the tenants every wave; the cold rest staggered
    /// over every fourth wave.
    HotCold,
    /// Four waves of everyone, four waves of silence, against a small
    /// queue — the overload/shed scenario.
    Bursty,
}

impl ArrivalMix {
    /// Machine-readable name used in labels and the JSON schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArrivalMix::Uniform => "uniform",
            ArrivalMix::HotCold => "hot-cold",
            ArrivalMix::Bursty => "bursty",
        }
    }

    /// Whether tenant `id` (of `tenants`) sends a query in `wave`.
    #[must_use]
    fn participates(self, id: u64, tenants: u64, wave: usize) -> bool {
        match self {
            ArrivalMix::Uniform => true,
            ArrivalMix::HotCold => {
                let hot = (tenants / 4).max(1);
                id < hot || wave % 4 == (id % 4) as usize
            }
            ArrivalMix::Bursty => (wave / 4).is_multiple_of(2),
        }
    }

    /// Per-shard queue capacity for this mix.  The bursty mix is sized to
    /// overflow under a full-burst wave so the bounded-admission shed path
    /// runs; the steady mixes never shed.
    #[must_use]
    fn queue_capacity(self, tenants: usize, shards: usize) -> usize {
        match self {
            ArrivalMix::Uniform | ArrivalMix::HotCold => tenants.max(4),
            ArrivalMix::Bursty => (tenants / (shards * 2)).max(2),
        }
    }
}

/// One cell of the serve grid: a sized service under one arrival mix.
#[derive(Debug, Clone)]
pub struct ServeCellSpec {
    /// Row label, e.g. `tenants=48/mix=bursty`.
    pub label: String,
    /// Number of registered tenants.
    pub tenants: usize,
    /// Feature dimension of every tenant's queries.
    pub dim: usize,
    /// Shard count of the service.
    pub shards: usize,
    /// Closed-loop waves to pump.
    pub waves: usize,
    /// The arrival mix.
    pub mix: ArrivalMix,
    /// Base seed of the cell's traffic streams.
    pub seed: u64,
}

/// Wall-clock figures of one serve cell (excluded from the determinism
/// fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct ServePerf {
    /// End-to-end seconds for the cell (generation + service + verify).
    pub wall_clock_secs: f64,
    /// Quotes served per second of drain (service) time.
    pub quotes_per_sec: f64,
    /// Mean per-request service latency in µs.
    pub latency_mean_micros: f64,
    /// Median per-request service latency in µs.
    pub latency_p50_micros: f64,
    /// p99 per-request service latency in µs.
    pub latency_p99_micros: f64,
}

/// Everything the BENCH v2 report records about one serve cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCellReport {
    /// Row label (from the cell spec).
    pub label: String,
    /// Arrival-mix name.
    pub mix: String,
    /// Registered tenants.
    pub tenants: u64,
    /// Service shard count.
    pub shards: u64,
    /// Closed-loop waves per repetition.
    pub waves: u64,
    /// Repetitions aggregated.
    pub reps: u64,
    /// Worker threads each drain ran on.
    pub workers: u64,
    /// Quotes served, summed over repetitions.
    pub quotes_served: u64,
    /// Outcome reports applied, summed over repetitions.
    pub observations: u64,
    /// Accepted quotes, summed over repetitions.
    pub sales: u64,
    /// Requests shed at admission (bounded queue), summed over repetitions.
    pub shed: u64,
    /// Requests rejected at serve time, summed over repetitions.
    pub rejected: u64,
    /// Cumulative revenue per repetition.
    pub revenue: AggStat,
    /// Cumulative exact regret per repetition.
    pub regret: AggStat,
    /// Acceptance rate per repetition.
    pub accept_rate: AggStat,
    /// Wall-clock throughput/latency figures.
    pub perf: ServePerf,
}

impl ServeCellReport {
    /// Fraction of admission attempts that were shed.
    ///
    /// Delegates to [`ShardMetrics::shed_rate`] so the report and the
    /// service agree on one definition of an "attempt".
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        let mut counters = ShardMetrics::new();
        counters.quotes_served = self.quotes_served;
        counters.observations = self.observations;
        counters.rejected = self.rejected;
        counters.shed = self.shed;
        counters.shed_rate()
    }
}

/// The serve grid: tenant count × arrival mix at the given scale.
#[must_use]
pub fn serve_grid(scale: Scale) -> Vec<ServeCellSpec> {
    let tenant_counts = scale.pick(vec![16usize, 48], vec![192, 768]);
    let dim = scale.pick(3, 8);
    let shards = scale.pick(8, 16);
    let waves = scale.pick(24, 96);
    let mixes = [ArrivalMix::Uniform, ArrivalMix::HotCold, ArrivalMix::Bursty];
    let mut cells = Vec::new();
    for &tenants in &tenant_counts {
        for &mix in &mixes {
            let index = cells.len() as u64;
            cells.push(ServeCellSpec {
                label: format!("tenants={tenants}/mix={}", mix.name()),
                tenants,
                dim,
                shards,
                waves,
                mix,
                seed: SERVE_SEED_BASE + index,
            });
        }
    }
    cells
}

/// One recorded request of one tenant, replayed through a serial session
/// during verification.
enum ReplayEvent {
    /// A served quote: the query plus the posted price the service returned.
    Quote {
        features: pdm_linalg::Vector,
        reserve: f64,
        posted_bits: u64,
    },
    /// The buyer decision that closed it.
    Observe { accepted: bool, value: f64 },
}

/// The per-repetition outcome handed to the aggregator.
struct RepOutcome {
    revenue: f64,
    regret: f64,
    accept_rate: f64,
    metrics: ShardMetrics,
    /// Every shard's retained latency window, pooled — the exact sample set
    /// for the cell percentiles.  (Rolling shards up through
    /// [`ShardMetrics::merge`] instead would evict the earliest-merged
    /// shards' samples once the union exceeds the bounded window.)
    latency_pool: Vec<f64>,
    drain_time: Duration,
    /// The service's final `pdm-obs` scrape: per-stage span histograms,
    /// exported counters, and point-in-time gauges.  Folded across reps and
    /// cells into the run-wide registry `--metrics-out` writes.
    scrape: MetricRegistry,
}

/// Runs one repetition of one cell and verifies it against the serial
/// replay.  Returns the deterministic per-rep aggregates.
fn run_rep(spec: &ServeCellSpec, workers: usize, rep: u64) -> Result<RepOutcome, String> {
    let traffic_seed = derive_seed(spec.seed, rep);
    let tenants = spec.tenants as u64;
    let tenant_config = TenantConfig::standard(spec.dim, spec.waves);

    let mut service = MarketService::new(ServiceConfig {
        shards: spec.shards,
        queue_capacity: spec.mix.queue_capacity(spec.tenants, spec.shards),
        ..ServiceConfig::default()
    })
    .expect("valid service config");
    // Per-tenant hidden market model and query stream, all seeded from the
    // cell's traffic seed so repetitions are independent but reproducible.
    let mut streams: Vec<StdRng> = Vec::with_capacity(spec.tenants);
    let mut thetas: Vec<pdm_linalg::Vector> = Vec::with_capacity(spec.tenants);
    for id in 0..tenants {
        service
            .register_tenant(TenantId(id), tenant_config)
            .map_err(|e| format!("{}: register: {e}", spec.label))?;
        let mut rng = StdRng::seed_from_u64(derive_seed(traffic_seed, id.wrapping_add(1)));
        thetas.push(
            sampling::unit_sphere(&mut rng, spec.dim)
                .map(f64::abs)
                .normalized(),
        );
        streams.push(rng);
    }

    let mut replay: Vec<Vec<ReplayEvent>> = (0..spec.tenants).map(|_| Vec::new()).collect();
    // The (features, reserve, value) of each tenant's in-flight quote.
    let mut pending: Vec<Option<(pdm_linalg::Vector, f64, f64)>> = vec![None; spec.tenants];
    let mut drain_time = Duration::ZERO;
    // Response buffer reused across every drain of the rep, so the timed
    // path never grows a fresh allocation.
    let mut responses = Vec::new();

    for wave in 0..spec.waves {
        for id in 0..tenants {
            if !spec.mix.participates(id, tenants, wave) {
                continue;
            }
            let rng = &mut streams[id as usize];
            let features = sampling::standard_normal_vector(rng, spec.dim)
                .map(f64::abs)
                .normalized();
            let value = thetas[id as usize]
                .dot(&features)
                .map_err(|e| format!("{}: dot: {e}", spec.label))?;
            let reserve = RESERVE_FRACTION * value;
            match service.submit_quote(QueryRequest {
                tenant: TenantId(id),
                features: features.clone(),
                reserve_price: reserve,
            }) {
                Ok(_) => pending[id as usize] = Some((features, reserve, value)),
                // Bounded admission under overload: the request is gone and
                // the tenant simply has no round this wave.
                Err(ServiceError::QueueFull { .. }) => {}
                Err(e) => return Err(format!("{}: submit: {e}", spec.label)),
            }
        }

        responses.clear();
        let started = Instant::now();
        service.drain_into(workers, &mut responses);
        drain_time += started.elapsed();

        for response in &responses {
            let quote = response
                .quote()
                .ok_or_else(|| format!("{}: expected a quote response", spec.label))?;
            let slot = response.tenant.0 as usize;
            let (features, reserve, value) = pending[slot]
                .take()
                .ok_or_else(|| format!("{}: response without a pending quote", spec.label))?;
            let accepted = quote.posted_price <= value;
            replay[slot].push(ReplayEvent::Quote {
                features,
                reserve,
                posted_bits: quote.posted_price.to_bits(),
            });
            replay[slot].push(ReplayEvent::Observe { accepted, value });
            service
                .submit_outcome(OutcomeReport {
                    tenant: response.tenant,
                    accepted,
                    market_value: Some(value),
                })
                .map_err(|e| format!("{}: outcome: {e}", spec.label))?;
        }

        responses.clear();
        let started = Instant::now();
        service.drain_into(workers, &mut responses);
        drain_time += started.elapsed();
    }

    // Serial verification: replay every tenant's admitted request stream
    // through a fresh single-threaded session and require bit-identical
    // posted prices and ledgers.  This is the sharded-equals-serial
    // guarantee of the engine, checked on every run.
    let mut merged = RegretReport::empty();
    for id in 0..tenants {
        let mut session = TenantState::new(TenantId(id), tenant_config).session;
        for event in &replay[id as usize] {
            match event {
                ReplayEvent::Quote {
                    features,
                    reserve,
                    posted_bits,
                } => {
                    let quote = session.step(features, *reserve);
                    if quote.posted_price.to_bits() != *posted_bits {
                        return Err(format!(
                            "{}: tenant {id}: serial replay posted {} but the service \
                             posted {} — sharded and serial pricing diverged",
                            spec.label,
                            quote.posted_price,
                            f64::from_bits(*posted_bits),
                        ));
                    }
                }
                ReplayEvent::Observe { accepted, value } => {
                    session.observe(StepOutcome::with_value(*accepted, *value));
                }
            }
        }
        let serial = session.tracker().report();
        let served = service
            .tenant_report(TenantId(id))
            .ok_or_else(|| format!("{}: tenant {id} lost its report", spec.label))?;
        if serial.cumulative_revenue.to_bits() != served.cumulative_revenue.to_bits()
            || serial.cumulative_regret.to_bits() != served.cumulative_regret.to_bits()
            || serial.sales != served.sales
            || serial.rounds != served.rounds
        {
            return Err(format!(
                "{}: tenant {id}: serial ledger (revenue {}, regret {}, {} sales / {} \
                 rounds) disagrees with the service ledger (revenue {}, regret {}, {} \
                 sales / {} rounds)",
                spec.label,
                serial.cumulative_revenue,
                serial.cumulative_regret,
                serial.sales,
                serial.rounds,
                served.cumulative_revenue,
                served.cumulative_regret,
                served.sales,
                served.rounds,
            ));
        }
        merged.merge(&served);
    }

    let latency_pool = service
        .shard_metrics()
        .iter()
        .flat_map(|shard| shard.latency_window().to_vec())
        .collect();
    Ok(RepOutcome {
        revenue: merged.cumulative_revenue,
        regret: merged.cumulative_regret,
        accept_rate: merged.acceptance_rate(),
        metrics: service.aggregate_metrics(),
        latency_pool,
        drain_time,
        scrape: service.scrape(),
    })
}

/// Runs one cell (all repetitions) and aggregates it into a report row.
/// Every repetition's final service scrape is merged into `obs` (the
/// registry merge is an exact integer fold, so the rep/cell order never
/// moves a bucket).
pub fn run_serve_cell_obs(
    spec: &ServeCellSpec,
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<ServeCellReport, String> {
    let started = Instant::now();
    let reps = reps.max(1);
    let mut revenue = Vec::with_capacity(reps as usize);
    let mut regret = Vec::with_capacity(reps as usize);
    let mut accept_rate = Vec::with_capacity(reps as usize);
    let mut metrics = ShardMetrics::new();
    let mut latency_pool: Vec<f64> = Vec::new();
    let mut drain_time = Duration::ZERO;
    for rep in 0..reps {
        let mut outcome = run_rep(spec, workers, rep)?;
        revenue.push(outcome.revenue);
        regret.push(outcome.regret);
        accept_rate.push(outcome.accept_rate);
        metrics.merge(&outcome.metrics);
        latency_pool.append(&mut outcome.latency_pool);
        drain_time += outcome.drain_time;
        obs.merge(&outcome.scrape);
    }

    let drain_secs = drain_time.as_secs_f64();
    let quotes_per_sec = if drain_secs > 0.0 {
        metrics.quotes_served as f64 / drain_secs
    } else {
        0.0
    };
    // Percentiles come from the exact pooled per-shard windows, not the
    // merged (bounded, eviction-prone) service window.
    let (p50, p99) = match pdm_linalg::quantiles(&latency_pool, &[0.50, 0.99]) {
        Ok(qs) => (qs[0], qs[1]),
        Err(_) => (f64::NAN, f64::NAN),
    };
    Ok(ServeCellReport {
        label: spec.label.clone(),
        mix: spec.mix.name().to_owned(),
        tenants: spec.tenants as u64,
        shards: spec.shards as u64,
        waves: spec.waves as u64,
        reps,
        workers: workers as u64,
        quotes_served: metrics.quotes_served,
        observations: metrics.observations,
        sales: metrics.sales,
        shed: metrics.shed,
        rejected: metrics.rejected,
        revenue: AggStat::from_values(&revenue),
        regret: AggStat::from_values(&regret),
        accept_rate: AggStat::from_values(&accept_rate),
        perf: ServePerf {
            wall_clock_secs: started.elapsed().as_secs_f64(),
            quotes_per_sec,
            latency_mean_micros: metrics.latency_stats().mean(),
            latency_p50_micros: p50,
            latency_p99_micros: p99,
        },
    })
}

/// [`run_serve_cell_obs`] with the scrape discarded, for callers that only
/// want the report row.
pub fn run_serve_cell(
    spec: &ServeCellSpec,
    workers: usize,
    reps: u64,
) -> Result<ServeCellReport, String> {
    run_serve_cell_obs(spec, workers, reps, &mut MetricRegistry::new())
}

/// Runs a set of serve cells (the whole grid, or a `--filter` subset),
/// folding every cell's scrape into `obs`.
pub fn run_serve_cells_obs(
    cells: &[ServeCellSpec],
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<Vec<ServeCellReport>, String> {
    cells
        .iter()
        .map(|spec| run_serve_cell_obs(spec, workers, reps, obs))
        .collect()
}

/// Runs a set of serve cells (the whole grid, or a `--filter` subset).
pub fn run_serve_cells(
    cells: &[ServeCellSpec],
    workers: usize,
    reps: u64,
) -> Result<Vec<ServeCellReport>, String> {
    run_serve_cells_obs(cells, workers, reps, &mut MetricRegistry::new())
}

/// Runs the whole serve grid at the given scale.
pub fn run_serve_grid(
    scale: Scale,
    workers: usize,
    reps: u64,
) -> Result<Vec<ServeCellReport>, String> {
    run_serve_cells(&serve_grid(scale), workers, reps)
}

/// Renders the serve cells as the console table `bench serve` prints.
#[must_use]
pub fn render_serve(cells: &[ServeCellReport]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.label.clone(),
                cell.quotes_served.to_string(),
                cell.sales.to_string(),
                table::pct(cell.accept_rate.mean),
                table::pct(cell.shed_rate()),
                table::fmt(cell.revenue.mean, 2),
                table::fmt(cell.regret.mean, 2),
                table::fmt(cell.perf.quotes_per_sec, 0),
                table::fmt(cell.perf.latency_p50_micros, 1),
                table::fmt(cell.perf.latency_p99_micros, 1),
            ]
        })
        .collect();
    table::render(
        &[
            "cell", "quotes", "sales", "accept", "shed", "revenue", "regret", "quotes/s", "p50 µs",
            "p99 µs",
        ],
        &rows,
    )
}

/// Renders the grid-wide summary line `bench serve` prints under the
/// per-cell table: every cell's service-level aggregate (the
/// [`MarketService::aggregate_metrics`] fold each repetition produced)
/// summed across the grid.
///
/// [`MarketService::aggregate_metrics`]: pdm_service::MarketService::aggregate_metrics
#[must_use]
pub fn render_serve_summary(cells: &[ServeCellReport]) -> String {
    let mut totals = ShardMetrics::new();
    let mut revenue = 0.0;
    let mut regret = 0.0;
    let mut drain_secs = 0.0;
    for cell in cells {
        totals.quotes_served += cell.quotes_served;
        totals.observations += cell.observations;
        totals.sales += cell.sales;
        totals.shed += cell.shed;
        totals.rejected += cell.rejected;
        revenue += cell.revenue.mean;
        regret += cell.regret.mean;
        // Each cell's throughput is quotes ÷ accumulated drain time, so the
        // drain seconds are recovered exactly — the same fold the report's
        // v5 perf summary uses.
        if cell.perf.quotes_per_sec > 0.0 {
            drain_secs += cell.quotes_served as f64 / cell.perf.quotes_per_sec;
        }
    }
    let grid_quotes_per_sec = if drain_secs > 0.0 {
        totals.quotes_served as f64 / drain_secs
    } else {
        0.0
    };
    let rows = vec![vec![
        format!("{} cells", cells.len()),
        totals.quotes_served.to_string(),
        totals.sales.to_string(),
        table::pct(totals.accept_rate()),
        table::pct(totals.shed_rate()),
        table::fmt(revenue, 2),
        table::fmt(regret, 2),
        table::fmt(grid_quotes_per_sec, 0),
    ]];
    table::render(
        &[
            "grid total",
            "quotes",
            "sales",
            "accept",
            "shed",
            "revenue/rep",
            "regret/rep",
            "quotes/s",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell(mix: ArrivalMix) -> ServeCellSpec {
        ServeCellSpec {
            label: format!("tenants=12/mix={}", mix.name()),
            tenants: 12,
            dim: 3,
            shards: 4,
            waves: 8,
            mix,
            seed: 99,
        }
    }

    #[test]
    fn grid_covers_tenant_counts_and_mixes() {
        let quick = serve_grid(Scale::Quick);
        assert_eq!(quick.len(), 6);
        let labels: Vec<&str> = quick.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"tenants=16/mix=uniform"));
        assert!(labels.contains(&"tenants=48/mix=bursty"));
        // Seeds are distinct per cell, and full scale is strictly bigger.
        let mut seeds: Vec<u64> = quick.iter().map(|c| c.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), quick.len());
        let full = serve_grid(Scale::Full);
        assert!(full[0].tenants > quick[0].tenants);
        assert!(full[0].waves > quick[0].waves);
    }

    #[test]
    fn arrival_mixes_shape_traffic() {
        // Uniform: everyone, always.
        assert!(ArrivalMix::Uniform.participates(7, 16, 3));
        // Hot-cold: tenant 0 is hot (always on); a cold tenant only every
        // fourth wave.
        assert!(ArrivalMix::HotCold.participates(0, 16, 1));
        let cold = 9u64; // >= 16/4
        let on: Vec<usize> = (0..8)
            .filter(|&w| ArrivalMix::HotCold.participates(cold, 16, w))
            .collect();
        assert_eq!(on, vec![1, 5]);
        // Bursty: four on, four off.
        assert!(ArrivalMix::Bursty.participates(3, 16, 0));
        assert!(!ArrivalMix::Bursty.participates(3, 16, 4));
        // The bursty queue is deliberately small.
        assert!(
            ArrivalMix::Bursty.queue_capacity(48, 8) < ArrivalMix::Uniform.queue_capacity(48, 8)
        );
    }

    #[test]
    fn cell_runs_and_passes_its_own_serial_verification() {
        let report = run_serve_cell(&tiny_cell(ArrivalMix::Uniform), 2, 1).unwrap();
        assert_eq!(report.quotes_served, 12 * 8);
        assert_eq!(report.observations, report.quotes_served);
        assert_eq!(report.shed, 0);
        assert!(report.revenue.mean > 0.0);
        assert!(report.regret.mean >= 0.0);
        assert!(report.accept_rate.mean > 0.0 && report.accept_rate.mean <= 1.0);
        assert!(report.perf.quotes_per_sec > 0.0);
        assert!(report.perf.latency_p99_micros >= report.perf.latency_p50_micros);
    }

    #[test]
    fn bursty_cells_shed_but_stay_consistent() {
        let spec = ServeCellSpec {
            shards: 2,
            ..tiny_cell(ArrivalMix::Bursty)
        };
        let report = run_serve_cell(&spec, 2, 1).unwrap();
        assert!(
            report.shed > 0,
            "the bursty mix must exercise the shed path"
        );
        assert!(report.shed_rate() < 1.0);
        // Shed requests never became rounds, and the replay verification
        // still passed (run_serve_cell would have errored otherwise).
        assert_eq!(report.observations, report.quotes_served);
    }

    #[test]
    fn worker_count_does_not_move_deterministic_aggregates() {
        for mix in [ArrivalMix::Uniform, ArrivalMix::HotCold, ArrivalMix::Bursty] {
            let one = run_serve_cell(&tiny_cell(mix), 1, 2).unwrap();
            let four = run_serve_cell(&tiny_cell(mix), 4, 2).unwrap();
            assert_eq!(one.quotes_served, four.quotes_served, "{mix:?}");
            assert_eq!(one.sales, four.sales, "{mix:?}");
            assert_eq!(one.shed, four.shed, "{mix:?}");
            assert_eq!(
                one.revenue.mean.to_bits(),
                four.revenue.mean.to_bits(),
                "{mix:?}"
            );
            assert_eq!(
                one.regret.mean.to_bits(),
                four.regret.mean.to_bits(),
                "{mix:?}"
            );
        }
    }

    #[test]
    fn reps_reseed_the_traffic() {
        let one = run_serve_cell(&tiny_cell(ArrivalMix::Uniform), 2, 1).unwrap();
        let three = run_serve_cell(&tiny_cell(ArrivalMix::Uniform), 2, 3).unwrap();
        assert_eq!(three.quotes_served, 3 * one.quotes_served);
        // Different seeds ⇒ the repetitions spread.
        assert!(three.revenue.std > 0.0);
    }

    #[test]
    fn render_lists_every_cell_with_throughput() {
        let report = run_serve_cell(&tiny_cell(ArrivalMix::Uniform), 1, 1).unwrap();
        let table = render_serve(std::slice::from_ref(&report));
        assert!(table.contains("tenants=12/mix=uniform"));
        assert!(table.contains("quotes/s"));
        assert!(table.contains("p99"));
    }

    #[test]
    fn summary_folds_the_grid_totals() {
        let a = run_serve_cell(&tiny_cell(ArrivalMix::Uniform), 1, 1).unwrap();
        let b = run_serve_cell(&tiny_cell(ArrivalMix::HotCold), 1, 1).unwrap();
        let summary = render_serve_summary(&[a.clone(), b.clone()]);
        assert!(summary.contains("2 cells"));
        assert!(summary.contains(&(a.quotes_served + b.quotes_served).to_string()));
        assert!(summary.contains("revenue/rep"));
    }
}
