//! The `bench auction` workload: the multi-bidder auction market driven
//! through the sharded [`pdm_service::MarketService`] engine.
//!
//! The grid crosses **bidder count × valuation distribution × reserve
//! policy**.  Every cell registers `tenants` auction tenants (one
//! independent bid landscape each), pumps `waves` auction rounds per tenant
//! through the service — submit one [`AuctionRequest`] per tenant,
//! [`MarketService::drain`] on the requested worker count — and then
//! **replays every tenant's round stream through a fresh serial
//! [`TenantState::serve_auction`]**, requiring the quoted reserves and
//! clearing prices to match the threaded run **bit for bit**.  Reserve
//! policy arithmetic is shared code ([`pdm_auction::run_auction_round`]),
//! so a divergence means the engine broke, and the bench fails loudly.
//!
//! Deterministic aggregates (settled rounds, sales, reserve hits, clearing
//! revenue, welfare, and the second-price-no-reserve baseline) are folded
//! **per tenant in tenant order** from the verified replay, so they are
//! byte-identical for any `--workers`; wall-clock figures (rounds/sec,
//! drain latency percentiles) live strictly apart, exactly like the serve
//! workload.
//!
//! [`MarketService::drain`]: pdm_service::MarketService::drain
//! [`TenantState::serve_auction`]: pdm_service::TenantState::serve_auction

use crate::grid::derive_seed;
use crate::runner::AggStat;
use crate::table;
use crate::Scale;
use pdm_auction::{AuctionLedger, AuctionMarket, AuctionMarketConfig, ValuationDistribution};
use pdm_linalg::Vector;
use pdm_service::{
    AuctionPolicy, AuctionRequest, MarketService, MetricRegistry, ServiceConfig, ShardMetrics,
    TenantConfig, TenantId, TenantState,
};
use std::time::{Duration, Instant};

/// Base seed of the auction grid; each cell derives its streams from
/// `derive_seed(AUCTION_SEED_BASE + cell_index, rep)`.
const AUCTION_SEED_BASE: u64 = 0xA0C7;

/// Floors (privacy compensation) are this fraction of the hidden base
/// value, matching the `reserve_fraction` convention of the synthetic
/// environments.
const FLOOR_FRACTION: f64 = 0.3;

/// The empirical policy's window in the grid.
const EMPIRICAL_WINDOW: usize = 64;

/// One cell of the auction grid.
#[derive(Debug, Clone)]
pub struct AuctionCellSpec {
    /// Row label, e.g. `bidders=2/dist=lognormal/policy=session`.
    pub label: String,
    /// Registered auction tenants (independent bid landscapes).
    pub tenants: usize,
    /// Bidders per round.
    pub bidders: usize,
    /// Feature dimension of the auctioned items.
    pub dim: usize,
    /// Shard count of the service.
    pub shards: usize,
    /// Auction rounds per tenant.
    pub waves: usize,
    /// The valuation distribution bidders draw from.
    pub distribution: ValuationDistribution,
    /// The reserve policy every tenant of the cell runs.
    pub policy: AuctionPolicy,
    /// Base seed of the cell's streams.
    pub seed: u64,
}

/// Wall-clock figures of one auction cell (excluded from the determinism
/// fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionPerf {
    /// End-to-end seconds for the cell (generation + service + verify).
    pub wall_clock_secs: f64,
    /// Auction rounds settled per second of drain (service) time.
    pub rounds_per_sec: f64,
    /// Mean per-request service latency in µs, over *every* request of the
    /// cell (the all-time streaming stats, not the bounded percentile
    /// window).
    pub latency_mean_micros: f64,
    /// Median per-request service latency in µs.
    pub latency_p50_micros: f64,
    /// p99 per-request service latency in µs.
    pub latency_p99_micros: f64,
}

/// Everything the BENCH v3 report records about one auction cell.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionCellReport {
    /// Row label (from the cell spec).
    pub label: String,
    /// Valuation-distribution name.
    pub distribution: String,
    /// Reserve-policy name (`static` / `session` / `empirical`).
    pub policy: String,
    /// Registered tenants.
    pub tenants: u64,
    /// Bidders per round.
    pub bidders: u64,
    /// Service shard count.
    pub shards: u64,
    /// Rounds per tenant per repetition.
    pub waves: u64,
    /// Repetitions aggregated.
    pub reps: u64,
    /// Worker threads each drain ran on.
    pub workers: u64,
    /// Rounds settled, summed over repetitions.
    pub auctions: u64,
    /// Rounds sold, summed over repetitions.
    pub sales: u64,
    /// Sales priced by the reserve, summed over repetitions.
    pub reserve_hits: u64,
    /// Cumulative clearing revenue per repetition.
    pub revenue: AggStat,
    /// What second-price-with-no-reserve would have earned per repetition.
    pub baseline_revenue: AggStat,
    /// Cumulative allocative welfare per repetition.
    pub welfare: AggStat,
    /// Reserve hit-rate per repetition.
    pub hit_rate: AggStat,
    /// Wall-clock figures.
    pub perf: AuctionPerf,
}

impl AuctionCellReport {
    /// Revenue uplift over the no-reserve baseline (1.0 = no uplift;
    /// `NaN`-free: a zero baseline — e.g. single-bidder cells — reports the
    /// uplift as infinite only when revenue is positive, and 1 otherwise).
    #[must_use]
    pub fn uplift(&self) -> f64 {
        if self.baseline_revenue.mean > 0.0 {
            self.revenue.mean / self.baseline_revenue.mean
        } else if self.revenue.mean > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// Whether the cell runs a *learned* reserve policy (session or
    /// empirical — the cells the full-scale revenue gate applies to).
    #[must_use]
    pub fn is_learned_policy(&self) -> bool {
        self.policy != "static"
    }
}

/// The reserve policies of the grid, in column order.
#[must_use]
pub fn grid_policies() -> [AuctionPolicy; 3] {
    [
        AuctionPolicy::Static { markup: 0.0 },
        AuctionPolicy::Session,
        AuctionPolicy::Empirical {
            window: EMPIRICAL_WINDOW,
            welfare_weight: 0.0,
        },
    ]
}

/// The auction grid: bidder count × distribution × policy at the given
/// scale.
#[must_use]
pub fn auction_grid(scale: Scale) -> Vec<AuctionCellSpec> {
    let bidder_counts = [1usize, 2, 4];
    let tenants = scale.pick(4, 8);
    let dim = scale.pick(3, 4);
    let shards = scale.pick(4, 8);
    let waves = scale.pick(48, 768);
    let mut cells = Vec::new();
    for &bidders in &bidder_counts {
        for distribution in ValuationDistribution::bench_defaults() {
            for policy in grid_policies() {
                let index = cells.len() as u64;
                cells.push(AuctionCellSpec {
                    label: format!(
                        "bidders={bidders}/dist={}/policy={}",
                        distribution.name(),
                        policy.name()
                    ),
                    tenants,
                    bidders,
                    dim,
                    shards,
                    waves,
                    distribution,
                    policy,
                    seed: AUCTION_SEED_BASE + index,
                });
            }
        }
    }
    cells
}

/// One recorded auction round, replayed serially during verification.
struct RecordedRound {
    features: Vector,
    floor: f64,
    bids: Vec<f64>,
    reserve_bits: u64,
    price_bits: u64,
}

/// The per-repetition outcome handed to the aggregator.
struct RepOutcome {
    ledger: AuctionLedger,
    /// The service-wide metrics fold, carrying the all-time latency
    /// streaming stats (the bounded percentile window alone would drop the
    /// mean).
    metrics: ShardMetrics,
    latency_pool: Vec<f64>,
    drain_time: Duration,
    /// The service's final `pdm-obs` scrape, folded into the run registry.
    scrape: MetricRegistry,
}

/// Runs one repetition of one cell and verifies it against the serial
/// replay.  Returns the deterministic per-rep aggregates.
fn run_rep(spec: &AuctionCellSpec, workers: usize, rep: u64) -> Result<RepOutcome, String> {
    let traffic_seed = derive_seed(spec.seed, rep);
    let tenant_config = TenantConfig::auction(spec.dim, spec.waves, spec.policy);

    let mut service = MarketService::new(ServiceConfig {
        shards: spec.shards,
        queue_capacity: spec.tenants.max(4),
        ..ServiceConfig::default()
    })
    .expect("valid service config");
    let mut markets: Vec<AuctionMarket> = Vec::with_capacity(spec.tenants);
    for id in 0..spec.tenants as u64 {
        service
            .register_tenant(TenantId(id), tenant_config)
            .map_err(|e| format!("{}: register: {e}", spec.label))?;
        markets.push(AuctionMarket::new(AuctionMarketConfig {
            bidders: spec.bidders,
            dim: spec.dim,
            distribution: spec.distribution,
            floor_fraction: FLOOR_FRACTION,
            seed: derive_seed(traffic_seed, id.wrapping_add(1)),
            drift: None,
        }));
    }

    let mut recorded: Vec<Vec<RecordedRound>> = (0..spec.tenants).map(|_| Vec::new()).collect();
    let mut drain_time = Duration::ZERO;
    for _ in 0..spec.waves {
        for (id, market) in markets.iter_mut().enumerate() {
            let round = market.next_round();
            service
                .submit_auction(AuctionRequest {
                    tenant: TenantId(id as u64),
                    features: round.features.clone(),
                    floor: round.floor,
                    bids: round.bids.clone(),
                })
                .map_err(|e| format!("{}: submit: {e}", spec.label))?;
            recorded[id].push(RecordedRound {
                features: round.features,
                floor: round.floor,
                bids: round.bids,
                reserve_bits: 0,
                price_bits: 0,
            });
        }
        let started = Instant::now();
        let responses = service.drain(workers);
        drain_time += started.elapsed();
        for response in &responses {
            let cleared = response
                .cleared()
                .ok_or_else(|| format!("{}: expected a cleared response", spec.label))?;
            let slot = response.tenant.0 as usize;
            let round = recorded[slot]
                .last_mut()
                .ok_or_else(|| format!("{}: response without a submitted round", spec.label))?;
            round.reserve_bits = cleared.reserve.to_bits();
            round.price_bits = cleared.result.price.to_bits();
        }
    }

    // Serial verification: replay every tenant's round stream through a
    // fresh single-threaded tenant state (the same `serve_auction` path the
    // shards run) and require bit-identical reserves and clearing prices.
    // The replay also rebuilds the deterministic cell ledger, folded per
    // tenant in tenant order, which is what the report aggregates.
    let mut ledger = AuctionLedger::default();
    for (id, rounds) in recorded.iter().enumerate() {
        let mut tenant = TenantState::new(TenantId(id as u64), tenant_config);
        for round in rounds {
            let cleared = tenant
                .serve_auction(&round.features, round.floor, &round.bids)
                .ok_or_else(|| format!("{}: tenant {id} lost its auction market", spec.label))?;
            if cleared.reserve.to_bits() != round.reserve_bits
                || cleared.result.price.to_bits() != round.price_bits
            {
                return Err(format!(
                    "{}: tenant {id}: serial replay quoted reserve {} / price {} but the \
                     service produced reserve {} / price {} — sharded and serial auction \
                     arithmetic diverged",
                    spec.label,
                    cleared.reserve,
                    cleared.result.price,
                    f64::from_bits(round.reserve_bits),
                    f64::from_bits(round.price_bits),
                ));
            }
            ledger.record(&cleared);
        }
    }

    // The service's own (FIFO-ordered) ledger must agree on every counter;
    // monetary sums legitimately differ in addition order, so they are
    // compared through the counters and the per-round bits above.
    let metrics = service.aggregate_metrics();
    let served = metrics.auction;
    if served.auctions != ledger.auctions
        || served.sales != ledger.sales
        || served.reserve_hits != ledger.reserve_hits
    {
        return Err(format!(
            "{}: service ledger ({} auctions, {} sales, {} hits) disagrees with the \
             serial replay ({} auctions, {} sales, {} hits)",
            spec.label,
            served.auctions,
            served.sales,
            served.reserve_hits,
            ledger.auctions,
            ledger.sales,
            ledger.reserve_hits,
        ));
    }

    let latency_pool = service
        .shard_metrics()
        .iter()
        .flat_map(|shard| shard.latency_window().to_vec())
        .collect();
    Ok(RepOutcome {
        ledger,
        metrics,
        latency_pool,
        drain_time,
        scrape: service.scrape(),
    })
}

/// Runs one cell (all repetitions) and aggregates it into a report row,
/// folding every repetition's final service scrape into `obs`.
pub fn run_auction_cell_obs(
    spec: &AuctionCellSpec,
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<AuctionCellReport, String> {
    let started = Instant::now();
    let reps = reps.max(1);
    let mut totals = AuctionLedger::default();
    let mut metrics = ShardMetrics::new();
    let mut revenue = Vec::with_capacity(reps as usize);
    let mut baseline = Vec::with_capacity(reps as usize);
    let mut welfare = Vec::with_capacity(reps as usize);
    let mut hit_rate = Vec::with_capacity(reps as usize);
    let mut latency_pool: Vec<f64> = Vec::new();
    let mut drain_time = Duration::ZERO;
    for rep in 0..reps {
        let mut outcome = run_rep(spec, workers, rep)?;
        revenue.push(outcome.ledger.revenue);
        baseline.push(outcome.ledger.baseline_revenue);
        welfare.push(outcome.ledger.welfare);
        hit_rate.push(outcome.ledger.reserve_hit_rate());
        totals.merge(&outcome.ledger);
        metrics.merge(&outcome.metrics);
        latency_pool.append(&mut outcome.latency_pool);
        drain_time += outcome.drain_time;
        obs.merge(&outcome.scrape);
    }

    let drain_secs = drain_time.as_secs_f64();
    let rounds_per_sec = if drain_secs > 0.0 {
        totals.auctions as f64 / drain_secs
    } else {
        0.0
    };
    let (p50, p99) = match pdm_linalg::quantiles(&latency_pool, &[0.50, 0.99]) {
        Ok(qs) => (qs[0], qs[1]),
        Err(_) => (f64::NAN, f64::NAN),
    };
    Ok(AuctionCellReport {
        label: spec.label.clone(),
        distribution: spec.distribution.name().to_owned(),
        policy: spec.policy.name().to_owned(),
        tenants: spec.tenants as u64,
        bidders: spec.bidders as u64,
        shards: spec.shards as u64,
        waves: spec.waves as u64,
        reps,
        workers: workers as u64,
        auctions: totals.auctions,
        sales: totals.sales,
        reserve_hits: totals.reserve_hits,
        revenue: AggStat::from_values(&revenue),
        baseline_revenue: AggStat::from_values(&baseline),
        welfare: AggStat::from_values(&welfare),
        hit_rate: AggStat::from_values(&hit_rate),
        perf: AuctionPerf {
            wall_clock_secs: started.elapsed().as_secs_f64(),
            rounds_per_sec,
            latency_mean_micros: metrics.latency_stats().mean(),
            latency_p50_micros: p50,
            latency_p99_micros: p99,
        },
    })
}

/// [`run_auction_cell_obs`] with the scrape discarded, for callers that
/// only want the report row.
pub fn run_auction_cell(
    spec: &AuctionCellSpec,
    workers: usize,
    reps: u64,
) -> Result<AuctionCellReport, String> {
    run_auction_cell_obs(spec, workers, reps, &mut MetricRegistry::new())
}

/// Runs a set of auction cells (the whole grid, or a `--filter` subset),
/// folding every cell's scrape into `obs`.
pub fn run_auction_cells_obs(
    cells: &[AuctionCellSpec],
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<Vec<AuctionCellReport>, String> {
    cells
        .iter()
        .map(|spec| run_auction_cell_obs(spec, workers, reps, obs))
        .collect()
}

/// Runs a set of auction cells (the whole grid, or a `--filter` subset).
pub fn run_auction_cells(
    cells: &[AuctionCellSpec],
    workers: usize,
    reps: u64,
) -> Result<Vec<AuctionCellReport>, String> {
    run_auction_cells_obs(cells, workers, reps, &mut MetricRegistry::new())
}

/// Renders the auction cells as the console table `bench auction` prints.
#[must_use]
pub fn render_auction(cells: &[AuctionCellReport]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.label.clone(),
                cell.auctions.to_string(),
                cell.sales.to_string(),
                table::pct(cell.hit_rate.mean),
                table::fmt(cell.revenue.mean, 2),
                table::fmt(cell.baseline_revenue.mean, 2),
                if cell.uplift().is_finite() {
                    format!("{:.3}", cell.uplift())
                } else {
                    "inf".to_owned()
                },
                table::fmt(cell.welfare.mean, 2),
                table::fmt(cell.perf.rounds_per_sec, 0),
                table::fmt(cell.perf.latency_p99_micros, 1),
            ]
        })
        .collect();
    table::render(
        &[
            "cell", "rounds", "sales", "hit", "revenue", "no-rsv", "uplift", "welfare", "rounds/s",
            "p99 µs",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell(bidders: usize, policy: AuctionPolicy) -> AuctionCellSpec {
        AuctionCellSpec {
            label: format!("bidders={bidders}/dist=uniform/policy={}", policy.name()),
            tenants: 4,
            bidders,
            dim: 3,
            shards: 2,
            waves: 12,
            distribution: ValuationDistribution::Uniform { spread: 0.95 },
            policy,
            seed: 1234,
        }
    }

    #[test]
    fn grid_crosses_bidders_distributions_and_policies() {
        let quick = auction_grid(Scale::Quick);
        assert_eq!(quick.len(), 3 * 3 * 3);
        let labels: Vec<&str> = quick.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"bidders=1/dist=uniform/policy=static"));
        assert!(labels.contains(&"bidders=2/dist=lognormal/policy=session"));
        assert!(labels.contains(&"bidders=4/dist=hot-cold/policy=empirical"));
        let mut seeds: Vec<u64> = quick.iter().map(|c| c.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), quick.len());
        let full = auction_grid(Scale::Full);
        assert!(full[0].waves > quick[0].waves);
        assert!(full[0].tenants > quick[0].tenants);
    }

    #[test]
    fn cell_runs_and_passes_its_own_serial_verification() {
        for policy in grid_policies() {
            let report = run_auction_cell(&tiny_cell(2, policy), 2, 1).unwrap();
            assert_eq!(report.auctions, 4 * 12, "{policy:?}");
            assert!(report.sales > 0, "{policy:?}");
            assert!(report.revenue.mean > 0.0, "{policy:?}");
            assert!(
                report.welfare.mean >= report.revenue.mean,
                "{policy:?}: welfare must dominate revenue"
            );
            assert!(report.perf.rounds_per_sec > 0.0, "{policy:?}");
        }
    }

    #[test]
    fn single_bidder_cells_report_a_zero_baseline() {
        let report =
            run_auction_cell(&tiny_cell(1, AuctionPolicy::Static { markup: 0.0 }), 1, 1).unwrap();
        assert_eq!(report.baseline_revenue.mean, 0.0);
        assert!(report.uplift().is_infinite());
        // Every single-bidder sale is priced by the reserve, by definition.
        assert_eq!(report.reserve_hits, report.sales);
        assert!((report.hit_rate.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worker_count_does_not_move_deterministic_aggregates() {
        for policy in grid_policies() {
            let one = run_auction_cell(&tiny_cell(2, policy), 1, 2).unwrap();
            let four = run_auction_cell(&tiny_cell(2, policy), 4, 2).unwrap();
            assert_eq!(one.auctions, four.auctions, "{policy:?}");
            assert_eq!(one.sales, four.sales, "{policy:?}");
            assert_eq!(one.reserve_hits, four.reserve_hits, "{policy:?}");
            assert_eq!(
                one.revenue.mean.to_bits(),
                four.revenue.mean.to_bits(),
                "{policy:?}"
            );
            assert_eq!(
                one.welfare.mean.to_bits(),
                four.welfare.mean.to_bits(),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn latency_mean_pools_the_all_time_stats_across_reps() {
        // Regression: the cell mean must come from the merged all-time
        // streaming stats, not be dropped (NaN) or read off the bounded
        // percentile window.
        let mut obs = MetricRegistry::new();
        let report =
            run_auction_cell_obs(&tiny_cell(2, AuctionPolicy::Session), 2, 2, &mut obs).unwrap();
        assert!(
            report.perf.latency_mean_micros.is_finite() && report.perf.latency_mean_micros > 0.0,
            "mean {} must be a real pooled figure",
            report.perf.latency_mean_micros
        );
        // The scrape folded both repetitions' auction rounds.
        let rounds = obs
            .counter_value("auction.rounds_total")
            .expect("the scrape exports the auction ledger");
        assert_eq!(rounds as u64, report.auctions);
    }

    #[test]
    fn reps_reseed_the_traffic() {
        let spec = tiny_cell(2, AuctionPolicy::Session);
        let one = run_auction_cell(&spec, 2, 1).unwrap();
        let three = run_auction_cell(&spec, 2, 3).unwrap();
        assert_eq!(three.auctions, 3 * one.auctions);
        assert!(three.revenue.std > 0.0);
    }

    #[test]
    fn render_lists_every_cell_with_uplift() {
        let report = run_auction_cell(&tiny_cell(2, AuctionPolicy::Session), 1, 1).unwrap();
        let rendered = render_auction(std::slice::from_ref(&report));
        assert!(rendered.contains("bidders=2/dist=uniform/policy=session"));
        assert!(rendered.contains("uplift"));
        assert!(rendered.contains("no-rsv"));
    }
}
