//! Command-line front end shared by the `bench` binary and the legacy
//! per-figure shims.
//!
//! Parsing is **strict**: an unrecognised flag is an error with a usage
//! message, never silently ignored (a typo like `--ful` used to run the
//! wrong scale for minutes).  The same parser backs all ten binaries, so
//! every experiment accepts `--full`, `--workers`, `--reps`, `--json`, and
//! `--check` uniformly.

use crate::auction::{auction_grid, render_auction, run_auction_cells_obs};
use crate::drift::{drift_grid, render_drift, run_drift_cells_obs};
use crate::experiments::{experiments_for, render_experiment, render_fig1};
use crate::grid::expand_jobs;
use crate::longhaul::{longhaul_grid, render_longhaul, run_longhaul_cells_obs};
use crate::privacy::{privacy_grid, render_privacy, run_privacy_cells_obs};
use crate::report::{
    build_experiment_reports, git_describe, BenchReport, PerfFloor, PerfSummary, SCHEMA_VERSION,
};
use crate::runner::run_jobs;
use crate::serve::{render_serve, render_serve_summary, run_serve_cells_obs, serve_grid};
use crate::Scale;
use pdm_service::MetricRegistry;
use std::path::PathBuf;
use std::time::Instant;

/// The experiments the `bench` binary can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Fig. 1 — closed-form single-round regret shape.
    Fig1,
    /// Fig. 4(a)–(f) — cumulative regret, noisy linear query.
    Fig4,
    /// Fig. 5(a) — regret ratios vs the risk-averse baseline.
    Fig5a,
    /// Fig. 5(b) — accommodation rental, log-linear model.
    Fig5b,
    /// Fig. 5(c) — impression pricing, logistic model.
    Fig5c,
    /// Table I — per-round statistics under the reserve version.
    Table1,
    /// Theorems 1 & 3 — regret growth in T and n, ε ablation.
    RegretScaling,
    /// Section V-D — per-round latency and memory.
    Overhead,
    /// Lemma 8 / Fig. 6 — conservative-cut ablation.
    Lemma8,
    /// The closed-loop serving workload over the sharded `pdm-service`
    /// engine (tenant-count × arrival-mix grid, throughput + latency).
    Serve,
    /// The multi-bidder auction workload (bidder-count × distribution ×
    /// reserve-policy grid with serial-replay verification).
    Auction,
    /// The drifting-market workload (drift-kind × magnitude × policy grid
    /// with post-shift regret and serial-replay verification).
    Drift,
    /// The sustained-serving workload (continuous ingest with WAL
    /// checkpoints under traffic, a timed bit-identical restore, and
    /// cold-tenant paging churn under a resident cap).
    Longhaul,
    /// The privacy-budget workload (per-owner ε ledgers exhausting
    /// mid-run, revenue-vs-compensation accounting, supply throttling,
    /// and a bit-identical ledger-carrying WAL restore).
    Privacy,
    /// Every simulation experiment above in one grid.
    All,
}

impl Command {
    /// Every subcommand, in help order.
    pub const ALL: [Command; 15] = [
        Command::Fig1,
        Command::Fig4,
        Command::Fig5a,
        Command::Fig5b,
        Command::Fig5c,
        Command::Table1,
        Command::RegretScaling,
        Command::Overhead,
        Command::Lemma8,
        Command::Serve,
        Command::Auction,
        Command::Drift,
        Command::Longhaul,
        Command::Privacy,
        Command::All,
    ];

    /// The subcommand's CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Command::Fig1 => "fig1",
            Command::Fig4 => "fig4",
            Command::Fig5a => "fig5a",
            Command::Fig5b => "fig5b",
            Command::Fig5c => "fig5c",
            Command::Table1 => "table1",
            Command::RegretScaling => "regret-scaling",
            Command::Overhead => "overhead",
            Command::Lemma8 => "lemma8",
            Command::Serve => "serve",
            Command::Auction => "auction",
            Command::Drift => "drift",
            Command::Longhaul => "longhaul",
            Command::Privacy => "privacy",
            Command::All => "all",
        }
    }

    /// Parses a subcommand name (the legacy binary names with underscores
    /// are accepted as aliases).
    #[must_use]
    pub fn parse(name: &str) -> Option<Command> {
        let normalised = name.replace('_', "-");
        Command::ALL.into_iter().find(|c| c.name() == normalised)
    }
}

/// A fully parsed `bench` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// The experiment(s) to run.
    pub command: Command,
    /// Quick or paper scale.
    pub scale: Scale,
    /// Where to write the `BENCH_*.json` report, if anywhere.
    pub json: Option<PathBuf>,
    /// Worker threads for the grid.
    pub workers: usize,
    /// Repetitions per cell (different seeds, aggregated with CIs).
    pub reps: u64,
    /// Fail (exit 1) when any aggregate is NaN/negative or any regret ratio
    /// exceeds 1 — the CI smoke gate.
    pub check: bool,
    /// Restrict every grid (experiments, serve, auction) to the cells whose
    /// job key contains this substring.
    pub filter: Option<String>,
    /// Fail (exit 1) when the serve grid's quotes/sec falls below the floor
    /// file's tolerance band — the perf-smoke CI gate.
    pub perf_floor: Option<PathBuf>,
    /// Where to write the run's merged `pdm-obs` registry as a Prometheus
    /// text exposition (format 0.0.4), if anywhere.
    pub metrics_out: Option<PathBuf>,
}

/// The usage text printed on parse errors and `--help`.
#[must_use]
pub fn usage() -> String {
    let commands: Vec<&str> = Command::ALL.iter().map(|c| c.name()).collect();
    format!(
        "usage: bench <command> [--full] [--workers N] [--reps N] [--json PATH] [--check]\n\
         \x20            [--filter SUBSTRING] [--perf-floor PATH] [--metrics-out PATH]\n\
         \n\
         commands: {}\n\
         \n\
         options:\n\
         \x20 --full        run at the paper's scale (default: quick scale)\n\
         \x20 --workers N   worker threads for the experiment grid \
         (default: available cores)\n\
         \x20 --reps N      repetitions per cell, aggregated with 95% CIs (default: 1)\n\
         \x20 --json PATH   write the versioned BENCH report (schema v{SCHEMA_VERSION}) to PATH\n\
         \x20 --check       exit non-zero when any aggregate is NaN/negative or any\n\
         \x20               regret ratio exceeds 1 (the CI smoke gate)\n\
         \x20 --filter S    run only the grid cells whose job key (experiment/cell\n\
         \x20               label) contains the substring S; it is an error when\n\
         \x20               nothing matches\n\
         \x20 --perf-floor PATH\n\
         \x20               exit non-zero when the serve grid's quotes/sec falls\n\
         \x20               below the floor file's tolerance band (the perf-smoke\n\
         \x20               CI gate; see docs/PERF_FLOOR.json)\n\
         \x20 --metrics-out PATH\n\
         \x20               write the run's merged pdm-obs registry (service\n\
         \x20               counters, gauges, per-stage span histograms) to PATH\n\
         \x20               as a Prometheus text exposition\n\
         \x20 -h, --help    show this message",
        commands.join(", ")
    )
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parses arguments.  `preset` fixes the subcommand (the legacy shims);
/// otherwise the first positional argument names it.  Unknown arguments are
/// an error; `Ok(None)` means `--help` was requested.
pub fn parse_args(preset: Option<Command>, args: &[String]) -> Result<Option<BenchArgs>, String> {
    let mut command = preset;
    let mut scale = Scale::Quick;
    let mut json = None;
    let mut workers = default_workers();
    let mut reps = 1u64;
    let mut check = false;
    let mut filter = None;
    let mut perf_floor = None;
    let mut metrics_out = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--full" => scale = Scale::Full,
            "--check" => check = true,
            "--filter" => {
                let needle = iter
                    .next()
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| "--filter needs a non-empty substring".to_owned())?;
                filter = Some(needle.clone());
            }
            "--json" => {
                let path = iter
                    .next()
                    .ok_or_else(|| "--json needs a file path".to_owned())?;
                json = Some(PathBuf::from(path));
            }
            "--perf-floor" => {
                let path = iter
                    .next()
                    .ok_or_else(|| "--perf-floor needs a file path".to_owned())?;
                perf_floor = Some(PathBuf::from(path));
            }
            "--metrics-out" => {
                let path = iter
                    .next()
                    .ok_or_else(|| "--metrics-out needs a file path".to_owned())?;
                metrics_out = Some(PathBuf::from(path));
            }
            "--workers" => {
                let n = iter
                    .next()
                    .ok_or_else(|| "--workers needs a count".to_owned())?;
                workers = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--workers needs a positive integer, got `{n}`"))?;
            }
            "--reps" => {
                let n = iter
                    .next()
                    .ok_or_else(|| "--reps needs a count".to_owned())?;
                reps = n
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--reps needs a positive integer, got `{n}`"))?;
            }
            positional if !positional.starts_with('-') && command.is_none() => {
                command = Some(
                    Command::parse(positional)
                        .ok_or_else(|| format!("unknown command `{positional}`"))?,
                );
            }
            unknown => return Err(format!("unrecognized argument `{unknown}`")),
        }
    }

    let command = command.ok_or_else(|| "missing command".to_owned())?;
    Ok(Some(BenchArgs {
        command,
        scale,
        json,
        workers,
        reps,
        check,
        filter,
        perf_floor,
        metrics_out,
    }))
}

/// Applies the `--filter` substring to a list of cells via each cell's job
/// key.  Returns the retained cells; `None` filter keeps everything.
fn filter_cells<T>(cells: Vec<T>, filter: Option<&str>, key: impl Fn(&T) -> String) -> Vec<T> {
    match filter {
        None => cells,
        Some(needle) => cells
            .into_iter()
            .filter(|cell| key(cell).contains(needle))
            .collect(),
    }
}

/// Runs one closed-loop service workload (serve or auction): banner, cells,
/// tables, and the serial-replay verification footer.  Empty cell lists
/// (the subcommand does not cover the workload) run nothing.
fn run_closed_loop_workload<C, R>(
    name: &str,
    args: &BenchArgs,
    workers: usize,
    cells: &[C],
    mut run: impl FnMut(&[C], usize, u64) -> Result<Vec<R>, String>,
    render: impl Fn(&[R]) -> Vec<String>,
    verified: &str,
) -> Result<Vec<R>, String> {
    if cells.is_empty() {
        return Ok(Vec::new());
    }
    println!(
        "bench {name} — {} ({} cells, {} drain worker{}, {} rep{} per cell)",
        args.scale.label(),
        cells.len(),
        workers,
        if workers == 1 { "" } else { "s" },
        args.reps,
        if args.reps == 1 { "" } else { "s" },
    );
    println!();
    let rows = run(cells, workers, args.reps)?;
    for table in render(&rows) {
        println!("{table}");
    }
    println!("every cell verified bit-for-bit against its serial per-tenant replay ({verified})");
    println!();
    Ok(rows)
}

/// Runs a parsed invocation end to end: execute the grid, print the tables,
/// write the JSON report, apply the `--check` gate.
///
/// Returns the report on success and the failure message otherwise.
pub fn execute(args: &BenchArgs) -> Result<BenchReport, String> {
    let start = Instant::now();
    if args.command == Command::Fig1 {
        print!("{}", render_fig1());
    }
    let filter = args.filter.as_deref();

    // Assemble every grid the subcommand covers, then apply `--filter` to
    // the job keys (experiment name / cell label) uniformly.
    let mut experiments = experiments_for(args.command, args.scale);
    if filter.is_some() {
        for experiment in &mut experiments {
            let name = experiment.name.clone();
            experiment.cells = filter_cells(std::mem::take(&mut experiment.cells), filter, |c| {
                format!("{name}/{}", c.label)
            });
        }
        experiments.retain(|e| !e.cells.is_empty());
    }
    let serve_cells = if args.command == Command::Serve {
        filter_cells(serve_grid(args.scale), filter, |c| c.label.clone())
    } else {
        Vec::new()
    };
    let auction_cells = if args.command == Command::Auction {
        filter_cells(auction_grid(args.scale), filter, |c| c.label.clone())
    } else {
        Vec::new()
    };
    let drift_cells = if args.command == Command::Drift {
        filter_cells(drift_grid(args.scale), filter, |c| c.label.clone())
    } else {
        Vec::new()
    };
    let longhaul_cells = if args.command == Command::Longhaul {
        filter_cells(longhaul_grid(args.scale), filter, |c| c.label.clone())
    } else {
        Vec::new()
    };
    let privacy_cells = if args.command == Command::Privacy {
        filter_cells(privacy_grid(args.scale), filter, |c| c.label.clone())
    } else {
        Vec::new()
    };
    if let Some(needle) = filter {
        if experiments.is_empty()
            && serve_cells.is_empty()
            && auction_cells.is_empty()
            && drift_cells.is_empty()
            && longhaul_cells.is_empty()
            && privacy_cells.is_empty()
        {
            return Err(format!(
                "--filter `{needle}` matched no cells of `bench {}`",
                args.command.name()
            ));
        }
    }

    let grids: Vec<Vec<crate::grid::CellSpec>> =
        experiments.iter().map(|e| e.cells.clone()).collect();
    let jobs = expand_jobs(&grids, args.reps);
    // The effective pool size — this, not the requested count, is what the
    // banner, footer, and JSON report record.  For the simulation grid,
    // `run_jobs` clamps to the job count; for the serve and auction
    // workloads, `MarketService::drain` clamps to the shard count (uniform
    // across the grid at a given scale), so the same clamp is applied here.
    let shard_cap = serve_cells
        .iter()
        .map(|cell| cell.shards)
        .chain(auction_cells.iter().map(|cell| cell.shards))
        .chain(drift_cells.iter().map(|cell| cell.shards))
        .chain(longhaul_cells.iter().map(|cell| cell.shards))
        .chain(privacy_cells.iter().map(|cell| cell.shards))
        .max();
    let workers = match shard_cap {
        Some(shards) => args.workers.clamp(1, shards),
        None => args.workers.clamp(1, jobs.len().max(1)),
    };
    if !jobs.is_empty() {
        println!(
            "bench {} — {} ({} jobs across {} worker{}, {} rep{} per cell)",
            args.command.name(),
            args.scale.label(),
            jobs.len(),
            workers,
            if workers == 1 { "" } else { "s" },
            args.reps,
            if args.reps == 1 { "" } else { "s" },
        );
        println!();
    }
    let results = run_jobs(&jobs, workers);

    let reports = build_experiment_reports(
        experiments
            .iter()
            .map(|e| (e.name.as_str(), e.cells.as_slice())),
        &jobs,
        &results,
    );
    for (experiment, report) in experiments.iter().zip(&reports) {
        println!("{}", render_experiment(experiment.kind, report));
        if !experiment.note.is_empty() {
            println!("{}", experiment.note);
            println!();
        }
    }

    // Every service workload folds its final scrape into this run-wide
    // registry (counters and histogram buckets merge as exact integer adds,
    // so the fold order across cells and reps cannot matter).
    let mut obs = MetricRegistry::new();
    let serve = run_closed_loop_workload(
        "serve",
        args,
        workers,
        &serve_cells,
        |cells, workers, reps| run_serve_cells_obs(cells, workers, reps, &mut obs),
        |rows| vec![render_serve(rows), render_serve_summary(rows)],
        "posted prices, revenue, regret",
    )?;
    let auction = run_closed_loop_workload(
        "auction",
        args,
        workers,
        &auction_cells,
        |cells, workers, reps| run_auction_cells_obs(cells, workers, reps, &mut obs),
        |rows| vec![render_auction(rows)],
        "reserves, clearing prices, ledger counters",
    )?;
    let drift = run_closed_loop_workload(
        "drift",
        args,
        workers,
        &drift_cells,
        |cells, workers, reps| run_drift_cells_obs(cells, workers, reps, &mut obs),
        |rows| vec![render_drift(rows)],
        "posted prices, detector firings, restarts",
    )?;
    let longhaul = run_closed_loop_workload(
        "longhaul",
        args,
        workers,
        &longhaul_cells,
        |cells, workers, reps| run_longhaul_cells_obs(cells, workers, reps, &mut obs),
        |rows| vec![render_longhaul(rows)],
        "WAL restore continuation, pre-cut ledgers, resident bound",
    )?;
    let privacy = run_closed_loop_workload(
        "privacy",
        args,
        workers,
        &privacy_cells,
        |cells, workers, reps| run_privacy_cells_obs(cells, workers, reps, &mut obs),
        |rows| vec![render_privacy(rows)],
        "posted prices, refusals, ε ledgers, exhaustion trajectory",
    )?;
    // The report carries only the deterministic half of the registry
    // (wall-clock histograms excluded), and only when a service workload
    // actually ran — a simulation-only report has no obs section, exactly
    // like pre-v8 files.
    let ran_service_workload = !(serve.is_empty()
        && auction.is_empty()
        && drift.is_empty()
        && longhaul.is_empty()
        && privacy.is_empty());

    let report = BenchReport {
        obs: ran_service_workload.then(|| obs.to_json(true)),
        schema_version: SCHEMA_VERSION,
        name: args.command.name().to_owned(),
        git_describe: git_describe(),
        scale: args.scale.name().to_owned(),
        workers,
        reps: args.reps,
        wall_clock_secs: start.elapsed().as_secs_f64(),
        experiments: reports,
        perf: PerfSummary::from_serve(&serve),
        serve,
        auction,
        drift,
        longhaul,
        privacy,
    };

    println!(
        "completed in {:.2}s ({} jobs, {} worker{})",
        report.wall_clock_secs,
        jobs.len(),
        workers,
        if workers == 1 { "" } else { "s" },
    );

    if let Some(path) = &args.json {
        std::fs::write(path, report.to_json().render_pretty())
            .map_err(|e| format!("failed to write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }

    if let Some(path) = &args.metrics_out {
        // The full registry, wall-clock histograms included — the scrape is
        // an operational artifact, not a determinism fingerprint.  A
        // simulation-only run writes an empty (still lint-clean) exposition.
        std::fs::write(path, obs.render_prometheus())
            .map_err(|e| format!("failed to write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }

    if args.check {
        let violations = report.validate();
        if violations.is_empty() {
            println!(
                "check passed: all aggregates finite and non-negative, ratios and \
                 acceptance rates <= 1"
            );
        } else {
            return Err(format!(
                "check failed with {} violation(s):\n  {}",
                violations.len(),
                violations.join("\n  ")
            ));
        }
    }

    if let Some(path) = &args.perf_floor {
        let raw = std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        let floor = crate::json::Json::parse(&raw)
            .map_err(|e| format!("{}: {e}", path.display()))
            .and_then(|json| PerfFloor::from_json(&json))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let message = floor.check(&report)?;
        println!("{message}");
    }

    Ok(report)
}

/// Entry point shared by every binary: parse `raw_args` (with the shims'
/// preset subcommand), run, and map the outcome to an exit code.
#[must_use]
pub fn main_with(preset: Option<Command>, raw_args: &[String]) -> i32 {
    match parse_args(preset, raw_args) {
        Ok(None) => {
            println!("{}", usage());
            0
        }
        Ok(Some(args)) => match execute(&args) {
            Ok(_) => 0,
            Err(message) => {
                eprintln!("error: {message}");
                1
            }
        },
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            2
        }
    }
}

/// The legacy per-figure binaries: `shim("fig4")` is `bench fig4` with the
/// process arguments passed through.
#[must_use]
pub fn shim(name: &str) -> i32 {
    let command = Command::parse(name).expect("shim names a known subcommand");
    let args: Vec<String> = std::env::args().skip(1).collect();
    main_with(Some(command), &args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let args = parse_args(
            None,
            &strings(&["fig4", "--full", "--workers", "4", "--reps", "3"]),
        )
        .unwrap()
        .unwrap();
        assert_eq!(args.command, Command::Fig4);
        assert_eq!(args.scale, Scale::Full);
        assert_eq!(args.workers, 4);
        assert_eq!(args.reps, 3);
        assert!(!args.check);
        assert!(args.json.is_none());
    }

    #[test]
    fn serve_is_a_first_class_subcommand() {
        assert_eq!(Command::parse("serve"), Some(Command::Serve));
        let args = parse_args(None, &strings(&["serve", "--workers", "4", "--check"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.command, Command::Serve);
        assert_eq!(args.workers, 4);
        assert!(args.check);
        assert!(usage().contains("serve"));
    }

    #[test]
    fn auction_is_a_first_class_subcommand() {
        assert_eq!(Command::parse("auction"), Some(Command::Auction));
        let args = parse_args(None, &strings(&["auction", "--workers", "2", "--check"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.command, Command::Auction);
        assert!(args.check);
        assert!(usage().contains("auction"));
    }

    #[test]
    fn drift_is_a_first_class_subcommand() {
        assert_eq!(Command::parse("drift"), Some(Command::Drift));
        let args = parse_args(None, &strings(&["drift", "--workers", "2", "--check"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.command, Command::Drift);
        assert!(args.check);
        assert!(usage().contains("drift"));
    }

    #[test]
    fn longhaul_is_a_first_class_subcommand() {
        assert_eq!(Command::parse("longhaul"), Some(Command::Longhaul));
        let args = parse_args(None, &strings(&["longhaul", "--workers", "2", "--check"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.command, Command::Longhaul);
        assert!(args.check);
        assert!(usage().contains("longhaul"));
    }

    #[test]
    fn privacy_is_a_first_class_subcommand() {
        assert_eq!(Command::parse("privacy"), Some(Command::Privacy));
        let args = parse_args(None, &strings(&["privacy", "--workers", "2", "--check"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.command, Command::Privacy);
        assert!(args.check);
        assert!(usage().contains("privacy"));
    }

    #[test]
    fn filter_restricts_the_privacy_grid_and_the_check_gate_passes() {
        let mut args = parse_args(None, &strings(&["privacy", "--filter", "budget=1.5"]))
            .unwrap()
            .unwrap();
        args.workers = 2;
        args.check = true;
        let report = execute(&args).expect("filtered privacy run passes --check");
        assert_eq!(report.privacy.len(), 1);
        assert_eq!(report.privacy[0].label, "budget=1.5/owners=4");
        assert!(report.privacy[0].owners_exhausted > 0);
        assert!(report.experiments.is_empty());
        assert!(report.serve.is_empty());
        assert!(report.validate().is_empty());
    }

    #[test]
    fn filter_restricts_the_longhaul_grid() {
        let mut args = parse_args(None, &strings(&["longhaul", "--filter", "cap=8"]))
            .unwrap()
            .unwrap();
        args.workers = 2;
        let report = execute(&args).expect("filtered longhaul run");
        assert_eq!(report.longhaul.len(), 1);
        assert_eq!(report.longhaul[0].label, "tenants=24/cap=8");
        assert!(report.experiments.is_empty());
        assert!(report.serve.is_empty());
        assert!(report.validate().is_empty());
    }

    #[test]
    fn filter_restricts_the_drift_grid() {
        let mut args = parse_args(
            None,
            &strings(&[
                "drift",
                "--filter",
                "kind=adversarial/mag=1.0/policy=static",
            ]),
        )
        .unwrap()
        .unwrap();
        args.workers = 2;
        let report = execute(&args).expect("filtered drift run");
        assert_eq!(report.drift.len(), 1);
        assert_eq!(
            report.drift[0].label,
            "kind=adversarial/mag=1.0/policy=static"
        );
        assert!(report.experiments.is_empty());
        assert!(report.validate().is_empty());
    }

    #[test]
    fn filter_flag_parses_strictly() {
        let args = parse_args(None, &strings(&["serve", "--filter", "bursty"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.filter.as_deref(), Some("bursty"));
        // Missing or empty values are an error, not a silent no-op.
        assert!(parse_args(None, &strings(&["serve", "--filter"]))
            .unwrap_err()
            .contains("--filter"));
        assert!(parse_args(None, &strings(&["serve", "--filter", ""]))
            .unwrap_err()
            .contains("--filter"));
        // No filter by default.
        assert_eq!(
            parse_args(None, &strings(&["serve"]))
                .unwrap()
                .unwrap()
                .filter,
            None
        );
    }

    #[test]
    fn filter_restricts_the_auction_grid_and_rejects_no_matches() {
        let mut args = parse_args(
            None,
            &strings(&[
                "auction",
                "--filter",
                "bidders=1/dist=uniform/policy=static",
            ]),
        )
        .unwrap()
        .unwrap();
        args.workers = 2;
        let report = execute(&args).expect("filtered auction run");
        assert_eq!(report.auction.len(), 1);
        assert_eq!(
            report.auction[0].label,
            "bidders=1/dist=uniform/policy=static"
        );
        assert!(report.experiments.is_empty());

        args.filter = Some("no-such-cell".to_owned());
        let err = execute(&args).unwrap_err();
        assert!(err.contains("no-such-cell"), "{err}");
        assert!(err.contains("matched no cells"), "{err}");
    }

    #[test]
    fn filter_restricts_simulation_grids_by_job_key() {
        let mut args = parse_args(None, &strings(&["fig4", "--filter", "with reserve"]))
            .unwrap()
            .unwrap();
        args.workers = 2;
        let report = execute(&args).expect("filtered fig4 run");
        assert!(!report.experiments.is_empty());
        for experiment in &report.experiments {
            for cell in &experiment.cells {
                assert!(
                    format!("{}/{}", experiment.name, cell.label).contains("with reserve"),
                    "{} / {} escaped the filter",
                    experiment.name,
                    cell.label
                );
            }
        }
    }

    #[test]
    fn perf_floor_flag_parses_and_gates_a_serve_run() {
        // Parsing: the flag takes a path and is off by default.
        let args = parse_args(None, &strings(&["serve", "--perf-floor", "floor.json"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.perf_floor, Some(PathBuf::from("floor.json")));
        assert!(parse_args(None, &strings(&["serve", "--perf-floor"]))
            .unwrap_err()
            .contains("--perf-floor"));
        assert_eq!(
            parse_args(None, &strings(&["serve"]))
                .unwrap()
                .unwrap()
                .perf_floor,
            None
        );
        assert!(usage().contains("--perf-floor"));

        // End to end on one quick serve cell: a permissive floor passes, an
        // absurd floor fails, and a missing floor file is a clear error.
        let dir = std::env::temp_dir();
        let permissive = dir.join("pdm_perf_floor_permissive.json");
        let absurd = dir.join("pdm_perf_floor_absurd.json");
        std::fs::write(
            &permissive,
            r#"{"serve_quotes_per_sec": 1.0, "max_regression": 0.3}"#,
        )
        .expect("write floor");
        std::fs::write(
            &absurd,
            r#"{"serve_quotes_per_sec": 1e15, "max_regression": 0.3}"#,
        )
        .expect("write floor");

        let mut args = parse_args(None, &strings(&["serve", "--filter", "mix=uniform"]))
            .unwrap()
            .unwrap();
        args.workers = 2;
        args.perf_floor = Some(permissive.clone());
        let report = execute(&args).expect("a permissive floor passes");
        let perf = report.perf.expect("serve runs carry the v5 summary");
        assert!(perf.serve_quotes > 0);
        assert!(perf.serve_quotes_per_sec > 0.0);

        args.perf_floor = Some(absurd.clone());
        let err = execute(&args).unwrap_err();
        assert!(err.contains("perf floor failed"), "{err}");

        args.perf_floor = Some(dir.join("pdm_perf_floor_does_not_exist.json"));
        let err = execute(&args).unwrap_err();
        assert!(err.contains("failed to read"), "{err}");

        // Gating a simulation-only run is an error, not a silent pass.
        let mut fig4 = parse_args(None, &strings(&["fig4", "--filter", "with reserve"]))
            .unwrap()
            .unwrap();
        fig4.workers = 2;
        fig4.perf_floor = Some(permissive.clone());
        let err = execute(&fig4).unwrap_err();
        assert!(err.contains("no serve cells"), "{err}");

        let _ = std::fs::remove_file(permissive);
        let _ = std::fs::remove_file(absurd);
    }

    #[test]
    fn metrics_out_flag_parses_and_writes_a_lint_clean_exposition() {
        // Parsing: the flag takes a path and is off by default.
        let args = parse_args(None, &strings(&["serve", "--metrics-out", "scrape.prom"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.metrics_out, Some(PathBuf::from("scrape.prom")));
        assert!(parse_args(None, &strings(&["serve", "--metrics-out"]))
            .unwrap_err()
            .contains("--metrics-out"));
        assert_eq!(
            parse_args(None, &strings(&["serve"]))
                .unwrap()
                .unwrap()
                .metrics_out,
            None
        );
        assert!(usage().contains("--metrics-out"));

        // End to end on one quick serve cell: the scrape file is a valid
        // Prometheus exposition carrying the service counters and the
        // per-stage span histograms, and the JSON report carries the
        // deterministic half as the v8 `obs` section.
        let scrape = std::env::temp_dir().join("pdm_metrics_out_serve.prom");
        let mut args = parse_args(None, &strings(&["serve", "--filter", "mix=uniform"]))
            .unwrap()
            .unwrap();
        args.workers = 2;
        args.metrics_out = Some(scrape.clone());
        let report = execute(&args).expect("serve run with --metrics-out");
        let text = std::fs::read_to_string(&scrape).expect("scrape written");
        let lint = pdm_obs::prom::parse(&text).expect("exposition lints clean");
        assert!(lint.families > 0 && lint.samples > 0);
        assert!(text.contains("pdm_quotes_served_total"));
        assert!(text.contains("pdm_shard_quote_work_items_bucket"));
        let obs = report.obs.as_ref().expect("service runs carry obs");
        let quotes = obs
            .get("counters")
            .and_then(|c| c.get("quotes_served_total"))
            .and_then(crate::json::Json::as_f64)
            .expect("obs counters carry quotes_served_total");
        let total: u64 = report.serve.iter().map(|c| c.quotes_served).sum();
        assert_eq!(quotes as u64, total);
        let _ = std::fs::remove_file(scrape);

        // A simulation-only run writes an empty (still lint-clean) scrape
        // and carries no obs section.
        let scrape = std::env::temp_dir().join("pdm_metrics_out_fig4.prom");
        let mut fig4 = parse_args(None, &strings(&["fig4", "--filter", "with reserve"]))
            .unwrap()
            .unwrap();
        fig4.workers = 2;
        fig4.metrics_out = Some(scrape.clone());
        let report = execute(&fig4).expect("fig4 run with --metrics-out");
        assert!(report.obs.is_none());
        let text = std::fs::read_to_string(&scrape).expect("scrape written");
        let lint = pdm_obs::prom::parse(&text).expect("empty exposition lints clean");
        assert_eq!(lint.families, 0);
        let _ = std::fs::remove_file(scrape);
    }

    #[test]
    fn legacy_underscore_names_are_aliases() {
        assert_eq!(
            Command::parse("regret_scaling"),
            Some(Command::RegretScaling)
        );
        assert_eq!(
            Command::parse("regret-scaling"),
            Some(Command::RegretScaling)
        );
        assert_eq!(Command::parse("nope"), None);
    }

    #[test]
    fn unknown_flags_are_an_error_not_a_silent_noop() {
        // The original bug: `--ful` silently ran the quick scale.
        let err = parse_args(None, &strings(&["fig4", "--ful"])).unwrap_err();
        assert!(err.contains("--ful"), "{err}");
        let err = parse_args(Some(Command::All), &strings(&["--quick"])).unwrap_err();
        assert!(err.contains("--quick"), "{err}");
        let err = parse_args(None, &strings(&["figgy"])).unwrap_err();
        assert!(err.contains("figgy"), "{err}");
    }

    #[test]
    fn missing_command_and_flag_values_error() {
        assert!(parse_args(None, &[])
            .unwrap_err()
            .contains("missing command"));
        assert!(parse_args(Some(Command::All), &strings(&["--json"]))
            .unwrap_err()
            .contains("--json"));
        assert!(
            parse_args(Some(Command::All), &strings(&["--workers", "0"]))
                .unwrap_err()
                .contains("positive")
        );
        assert!(parse_args(Some(Command::All), &strings(&["--reps", "x"]))
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn scale_parsing_stays_in_lockstep_with_scale_try_from_args() {
        // `Scale::try_from_args` is the strict parser for flag-only callers;
        // this parser handles `--full` itself because it accepts more flags.
        // Pin the two together so they cannot drift.
        let via_cli = |args: &[&str]| {
            parse_args(Some(Command::Fig4), &strings(args))
                .unwrap()
                .unwrap()
                .scale
        };
        assert_eq!(Ok(via_cli(&["--full"])), Scale::try_from_args(["--full"]));
        assert_eq!(Ok(via_cli(&[])), Scale::try_from_args(Vec::<String>::new()));
        // Both reject the classic typo.
        assert!(Scale::try_from_args(["--ful"]).is_err());
        assert!(parse_args(Some(Command::Fig4), &strings(&["--ful"])).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse_args(None, &strings(&["--help"])).unwrap(), None);
        assert_eq!(
            parse_args(Some(Command::Fig4), &strings(&["-h"])).unwrap(),
            None
        );
        assert!(usage().contains("--workers"));
        assert!(usage().contains("regret-scaling"));
    }

    #[test]
    fn preset_plus_positional_keeps_the_preset() {
        // A shim's preset wins; a stray positional is rejected as unknown
        // only when it is not a valid command... it is treated as unknown
        // because the command slot is taken.
        let err = parse_args(Some(Command::Fig4), &strings(&["fig5a"])).unwrap_err();
        assert!(err.contains("fig5a"), "{err}");
    }
}
