//! Command-line front end shared by the `bench` binary and the legacy
//! per-figure shims.
//!
//! Parsing is **strict**: an unrecognised flag is an error with a usage
//! message, never silently ignored (a typo like `--ful` used to run the
//! wrong scale for minutes).  The same parser backs all ten binaries, so
//! every experiment accepts `--full`, `--workers`, `--reps`, `--json`, and
//! `--check` uniformly.

use crate::experiments::{experiments_for, render_experiment, render_fig1};
use crate::grid::expand_jobs;
use crate::report::{build_experiment_reports, git_describe, BenchReport, SCHEMA_VERSION};
use crate::runner::run_jobs;
use crate::serve::{render_serve, run_serve_grid, serve_grid};
use crate::Scale;
use std::path::PathBuf;
use std::time::Instant;

/// The experiments the `bench` binary can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Fig. 1 — closed-form single-round regret shape.
    Fig1,
    /// Fig. 4(a)–(f) — cumulative regret, noisy linear query.
    Fig4,
    /// Fig. 5(a) — regret ratios vs the risk-averse baseline.
    Fig5a,
    /// Fig. 5(b) — accommodation rental, log-linear model.
    Fig5b,
    /// Fig. 5(c) — impression pricing, logistic model.
    Fig5c,
    /// Table I — per-round statistics under the reserve version.
    Table1,
    /// Theorems 1 & 3 — regret growth in T and n, ε ablation.
    RegretScaling,
    /// Section V-D — per-round latency and memory.
    Overhead,
    /// Lemma 8 / Fig. 6 — conservative-cut ablation.
    Lemma8,
    /// The closed-loop serving workload over the sharded `pdm-service`
    /// engine (tenant-count × arrival-mix grid, throughput + latency).
    Serve,
    /// Every simulation experiment above in one grid.
    All,
}

impl Command {
    /// Every subcommand, in help order.
    pub const ALL: [Command; 11] = [
        Command::Fig1,
        Command::Fig4,
        Command::Fig5a,
        Command::Fig5b,
        Command::Fig5c,
        Command::Table1,
        Command::RegretScaling,
        Command::Overhead,
        Command::Lemma8,
        Command::Serve,
        Command::All,
    ];

    /// The subcommand's CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Command::Fig1 => "fig1",
            Command::Fig4 => "fig4",
            Command::Fig5a => "fig5a",
            Command::Fig5b => "fig5b",
            Command::Fig5c => "fig5c",
            Command::Table1 => "table1",
            Command::RegretScaling => "regret-scaling",
            Command::Overhead => "overhead",
            Command::Lemma8 => "lemma8",
            Command::Serve => "serve",
            Command::All => "all",
        }
    }

    /// Parses a subcommand name (the legacy binary names with underscores
    /// are accepted as aliases).
    #[must_use]
    pub fn parse(name: &str) -> Option<Command> {
        let normalised = name.replace('_', "-");
        Command::ALL.into_iter().find(|c| c.name() == normalised)
    }
}

/// A fully parsed `bench` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// The experiment(s) to run.
    pub command: Command,
    /// Quick or paper scale.
    pub scale: Scale,
    /// Where to write the `BENCH_*.json` report, if anywhere.
    pub json: Option<PathBuf>,
    /// Worker threads for the grid.
    pub workers: usize,
    /// Repetitions per cell (different seeds, aggregated with CIs).
    pub reps: u64,
    /// Fail (exit 1) when any aggregate is NaN/negative or any regret ratio
    /// exceeds 1 — the CI smoke gate.
    pub check: bool,
}

/// The usage text printed on parse errors and `--help`.
#[must_use]
pub fn usage() -> String {
    let commands: Vec<&str> = Command::ALL.iter().map(|c| c.name()).collect();
    format!(
        "usage: bench <command> [--full] [--workers N] [--reps N] [--json PATH] [--check]\n\
         \n\
         commands: {}\n\
         \n\
         options:\n\
         \x20 --full        run at the paper's scale (default: quick scale)\n\
         \x20 --workers N   worker threads for the experiment grid \
         (default: available cores)\n\
         \x20 --reps N      repetitions per cell, aggregated with 95% CIs (default: 1)\n\
         \x20 --json PATH   write the versioned BENCH report (schema v{SCHEMA_VERSION}) to PATH\n\
         \x20 --check       exit non-zero when any aggregate is NaN/negative or any\n\
         \x20               regret ratio exceeds 1 (the CI smoke gate)\n\
         \x20 -h, --help    show this message",
        commands.join(", ")
    )
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parses arguments.  `preset` fixes the subcommand (the legacy shims);
/// otherwise the first positional argument names it.  Unknown arguments are
/// an error; `Ok(None)` means `--help` was requested.
pub fn parse_args(preset: Option<Command>, args: &[String]) -> Result<Option<BenchArgs>, String> {
    let mut command = preset;
    let mut scale = Scale::Quick;
    let mut json = None;
    let mut workers = default_workers();
    let mut reps = 1u64;
    let mut check = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--full" => scale = Scale::Full,
            "--check" => check = true,
            "--json" => {
                let path = iter
                    .next()
                    .ok_or_else(|| "--json needs a file path".to_owned())?;
                json = Some(PathBuf::from(path));
            }
            "--workers" => {
                let n = iter
                    .next()
                    .ok_or_else(|| "--workers needs a count".to_owned())?;
                workers = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--workers needs a positive integer, got `{n}`"))?;
            }
            "--reps" => {
                let n = iter
                    .next()
                    .ok_or_else(|| "--reps needs a count".to_owned())?;
                reps = n
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--reps needs a positive integer, got `{n}`"))?;
            }
            positional if !positional.starts_with('-') && command.is_none() => {
                command = Some(
                    Command::parse(positional)
                        .ok_or_else(|| format!("unknown command `{positional}`"))?,
                );
            }
            unknown => return Err(format!("unrecognized argument `{unknown}`")),
        }
    }

    let command = command.ok_or_else(|| "missing command".to_owned())?;
    Ok(Some(BenchArgs {
        command,
        scale,
        json,
        workers,
        reps,
        check,
    }))
}

/// Runs a parsed invocation end to end: execute the grid, print the tables,
/// write the JSON report, apply the `--check` gate.
///
/// Returns the report on success and the failure message otherwise.
pub fn execute(args: &BenchArgs) -> Result<BenchReport, String> {
    let start = Instant::now();
    if args.command == Command::Fig1 {
        print!("{}", render_fig1());
    }

    let experiments = experiments_for(args.command, args.scale);
    let grids: Vec<Vec<crate::grid::CellSpec>> =
        experiments.iter().map(|e| e.cells.clone()).collect();
    let jobs = expand_jobs(&grids, args.reps);
    // The effective pool size — this, not the requested count, is what the
    // banner, footer, and JSON report record.  For the simulation grid,
    // `run_jobs` clamps to the job count; for the serve workload,
    // `MarketService::drain` clamps to the shard count (uniform across the
    // grid at a given scale), so the same clamp is applied here.
    let workers = if args.command == Command::Serve {
        let shards = serve_grid(args.scale)
            .iter()
            .map(|cell| cell.shards)
            .max()
            .unwrap_or(1);
        args.workers.clamp(1, shards)
    } else {
        args.workers.clamp(1, jobs.len().max(1))
    };
    if !jobs.is_empty() {
        println!(
            "bench {} — {} ({} jobs across {} worker{}, {} rep{} per cell)",
            args.command.name(),
            args.scale.label(),
            jobs.len(),
            workers,
            if workers == 1 { "" } else { "s" },
            args.reps,
            if args.reps == 1 { "" } else { "s" },
        );
        println!();
    }
    let results = run_jobs(&jobs, workers);

    let reports = build_experiment_reports(
        experiments
            .iter()
            .map(|e| (e.name.as_str(), e.cells.as_slice())),
        &jobs,
        &results,
    );
    for (experiment, report) in experiments.iter().zip(&reports) {
        println!("{}", render_experiment(experiment.kind, report));
        if !experiment.note.is_empty() {
            println!("{}", experiment.note);
            println!();
        }
    }

    let serve = if args.command == Command::Serve {
        let cells = serve_grid(args.scale);
        println!(
            "bench serve — {} ({} cells, {} drain worker{}, {} rep{} per cell)",
            args.scale.label(),
            cells.len(),
            workers,
            if workers == 1 { "" } else { "s" },
            args.reps,
            if args.reps == 1 { "" } else { "s" },
        );
        println!();
        let rows = run_serve_grid(args.scale, workers, args.reps)?;
        println!("{}", render_serve(&rows));
        println!(
            "every cell verified bit-for-bit against its serial per-tenant replay \
             (posted prices, revenue, regret)"
        );
        println!();
        rows
    } else {
        Vec::new()
    };

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        name: args.command.name().to_owned(),
        git_describe: git_describe(),
        scale: args.scale.name().to_owned(),
        workers,
        reps: args.reps,
        wall_clock_secs: start.elapsed().as_secs_f64(),
        experiments: reports,
        serve,
    };

    println!(
        "completed in {:.2}s ({} jobs, {} worker{})",
        report.wall_clock_secs,
        jobs.len(),
        workers,
        if workers == 1 { "" } else { "s" },
    );

    if let Some(path) = &args.json {
        std::fs::write(path, report.to_json().render_pretty())
            .map_err(|e| format!("failed to write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }

    if args.check {
        let violations = report.validate();
        if violations.is_empty() {
            println!(
                "check passed: all aggregates finite and non-negative, ratios and \
                 acceptance rates <= 1"
            );
        } else {
            return Err(format!(
                "check failed with {} violation(s):\n  {}",
                violations.len(),
                violations.join("\n  ")
            ));
        }
    }

    Ok(report)
}

/// Entry point shared by every binary: parse `raw_args` (with the shims'
/// preset subcommand), run, and map the outcome to an exit code.
#[must_use]
pub fn main_with(preset: Option<Command>, raw_args: &[String]) -> i32 {
    match parse_args(preset, raw_args) {
        Ok(None) => {
            println!("{}", usage());
            0
        }
        Ok(Some(args)) => match execute(&args) {
            Ok(_) => 0,
            Err(message) => {
                eprintln!("error: {message}");
                1
            }
        },
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            2
        }
    }
}

/// The legacy per-figure binaries: `shim("fig4")` is `bench fig4` with the
/// process arguments passed through.
#[must_use]
pub fn shim(name: &str) -> i32 {
    let command = Command::parse(name).expect("shim names a known subcommand");
    let args: Vec<String> = std::env::args().skip(1).collect();
    main_with(Some(command), &args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let args = parse_args(
            None,
            &strings(&["fig4", "--full", "--workers", "4", "--reps", "3"]),
        )
        .unwrap()
        .unwrap();
        assert_eq!(args.command, Command::Fig4);
        assert_eq!(args.scale, Scale::Full);
        assert_eq!(args.workers, 4);
        assert_eq!(args.reps, 3);
        assert!(!args.check);
        assert!(args.json.is_none());
    }

    #[test]
    fn serve_is_a_first_class_subcommand() {
        assert_eq!(Command::parse("serve"), Some(Command::Serve));
        let args = parse_args(None, &strings(&["serve", "--workers", "4", "--check"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.command, Command::Serve);
        assert_eq!(args.workers, 4);
        assert!(args.check);
        assert!(usage().contains("serve"));
    }

    #[test]
    fn legacy_underscore_names_are_aliases() {
        assert_eq!(
            Command::parse("regret_scaling"),
            Some(Command::RegretScaling)
        );
        assert_eq!(
            Command::parse("regret-scaling"),
            Some(Command::RegretScaling)
        );
        assert_eq!(Command::parse("nope"), None);
    }

    #[test]
    fn unknown_flags_are_an_error_not_a_silent_noop() {
        // The original bug: `--ful` silently ran the quick scale.
        let err = parse_args(None, &strings(&["fig4", "--ful"])).unwrap_err();
        assert!(err.contains("--ful"), "{err}");
        let err = parse_args(Some(Command::All), &strings(&["--quick"])).unwrap_err();
        assert!(err.contains("--quick"), "{err}");
        let err = parse_args(None, &strings(&["figgy"])).unwrap_err();
        assert!(err.contains("figgy"), "{err}");
    }

    #[test]
    fn missing_command_and_flag_values_error() {
        assert!(parse_args(None, &[])
            .unwrap_err()
            .contains("missing command"));
        assert!(parse_args(Some(Command::All), &strings(&["--json"]))
            .unwrap_err()
            .contains("--json"));
        assert!(
            parse_args(Some(Command::All), &strings(&["--workers", "0"]))
                .unwrap_err()
                .contains("positive")
        );
        assert!(parse_args(Some(Command::All), &strings(&["--reps", "x"]))
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn scale_parsing_stays_in_lockstep_with_scale_try_from_args() {
        // `Scale::try_from_args` is the strict parser for flag-only callers;
        // this parser handles `--full` itself because it accepts more flags.
        // Pin the two together so they cannot drift.
        let via_cli = |args: &[&str]| {
            parse_args(Some(Command::Fig4), &strings(args))
                .unwrap()
                .unwrap()
                .scale
        };
        assert_eq!(Ok(via_cli(&["--full"])), Scale::try_from_args(["--full"]));
        assert_eq!(Ok(via_cli(&[])), Scale::try_from_args(Vec::<String>::new()));
        // Both reject the classic typo.
        assert!(Scale::try_from_args(["--ful"]).is_err());
        assert!(parse_args(Some(Command::Fig4), &strings(&["--ful"])).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse_args(None, &strings(&["--help"])).unwrap(), None);
        assert_eq!(
            parse_args(Some(Command::Fig4), &strings(&["-h"])).unwrap(),
            None
        );
        assert!(usage().contains("--workers"));
        assert!(usage().contains("regret-scaling"));
    }

    #[test]
    fn preset_plus_positional_keeps_the_preset() {
        // A shim's preset wins; a stray positional is rejected as unknown
        // only when it is not a valid command... it is treated as unknown
        // because the command slot is taken.
        let err = parse_args(Some(Command::Fig4), &strings(&["fig5a"])).unwrap_err();
        assert!(err.contains("fig5a"), "{err}");
    }
}
