//! The impression-pricing pipeline of Section V-C / Fig. 5(c).
//!
//! 1. Generate Avazu-style impressions (a seeded stand-in for the click log).
//! 2. One-hot-hash the categorical fields to dimension `n ∈ {128, 1024}` and
//!    train FTRL-Proximal logistic regression on the click labels; the learnt
//!    weight vector plays the role of θ* and is sparse.
//! 3. Replay fresh impressions as pricing rounds under the logistic model:
//!    the market value of an impression is its CTR `σ(x^T θ*)`.
//!
//! Two feature treatments are compared, as in the paper: the **sparse** case
//! keeps all `n` hashed coordinates, the **dense** case drops the coordinates
//! whose learnt weight is (numerically) zero.

use pdm_datasets::{AvazuGenerator, Impression};
use pdm_learners::{FtrlProximal, HashingEncoder};
use pdm_linalg::Vector;
use pdm_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which feature treatment the pricing rounds use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureCase {
    /// All hashed coordinates (most of the weight vector is zero).
    Sparse,
    /// Only the coordinates with a significantly non-zero learnt weight.
    Dense,
}

impl FeatureCase {
    /// The paper's label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FeatureCase::Sparse => "sparse",
            FeatureCase::Dense => "dense",
        }
    }
}

/// The fitted Avazu pipeline for one hashing dimension.
#[derive(Debug, Clone)]
pub struct AvazuPipeline {
    /// The hashing encoder used for both training and pricing.
    pub encoder: HashingEncoder,
    /// The learnt CTR weight vector over the hashed features (the θ* of the
    /// logistic market value model).
    pub theta_star: Vector,
    /// Indices of the significantly non-zero weights (the dense case).
    pub active_coordinates: Vec<usize>,
    /// Progressive-validation log-loss of the FTRL training pass (the paper
    /// reports 0.40–0.42).
    pub train_log_loss: f64,
    /// Hashing dimension `n`.
    pub dim: usize,
}

/// Weight-magnitude threshold below which a hashed coordinate is dropped in
/// the dense case.
///
/// On the synthetic click log every hash bucket receives events, so the L1
/// soft threshold leaves many negligible-but-nonzero weights; the paper's
/// "non-zero elements" count corresponds to the weights that actually carry
/// signal, which this threshold selects. At 20k impressions hashed to
/// n = 128, the planted informative tokens train to |w| ≳ 0.2 while pure
/// hash-collision buckets stay below it (log-loss ≈ 0.41 either way,
/// matching the paper's 0.40–0.42).
pub const SIGNIFICANT_WEIGHT: f64 = 0.2;

impl AvazuPipeline {
    /// Trains the pipeline on a click log hashed to dimension `dim`.
    ///
    /// # Panics
    /// Panics when the training set is empty.
    #[must_use]
    pub fn train(impressions: &[Impression], dim: usize, seed: u64) -> Self {
        assert!(!impressions.is_empty(), "need training impressions");
        let encoder = HashingEncoder::new(dim, seed);
        let mut model = FtrlProximal::new(dim, 0.1, 1.0, 1.0, 1.0);
        let mut total_loss = 0.0;
        for impression in impressions {
            let mut tokens = impression.tokens();
            // Standard CTR practice: a constant bias token absorbs the base
            // click rate so the informative tokens stay sparse.
            tokens.push("bias".to_owned());
            let features = encoder.encode(&tokens);
            let p = model.update(&features, impression.clicked);
            total_loss += pdm_learners::ftrl::log_loss(p, impression.clicked);
        }
        let train_log_loss = total_loss / impressions.len() as f64;
        let theta_star = model.weights();
        let active_coordinates: Vec<usize> = (0..dim)
            .filter(|&i| theta_star[i].abs() > SIGNIFICANT_WEIGHT)
            .collect();
        Self {
            encoder,
            theta_star,
            active_coordinates,
            train_log_loss,
            dim,
        }
    }

    /// Number of significantly non-zero weights (the sparsity the paper
    /// reports: ~20 at both hashing dimensions).
    #[must_use]
    pub fn num_active_weights(&self) -> usize {
        self.active_coordinates.len()
    }

    /// The pricing feature vector of an impression for the given case.
    #[must_use]
    pub fn features(&self, impression: &Impression, case: FeatureCase) -> Vector {
        let mut tokens = impression.tokens();
        tokens.push("bias".to_owned());
        let full = self.encoder.encode(&tokens);
        match case {
            FeatureCase::Sparse => full,
            FeatureCase::Dense => Vector::from_fn(self.active_coordinates.len(), |k| {
                full[self.active_coordinates[k]]
            }),
        }
    }

    /// The weight vector matching [`AvazuPipeline::features`] for the case.
    #[must_use]
    pub fn weights(&self, case: FeatureCase) -> Vector {
        match case {
            FeatureCase::Sparse => self.theta_star.clone(),
            FeatureCase::Dense => Vector::from_fn(self.active_coordinates.len(), |k| {
                self.theta_star[self.active_coordinates[k]]
            }),
        }
    }

    /// Builds pricing rounds over a fresh impression stream.  Impressions are
    /// priced without a reserve (the paper evaluates the pure version here).
    #[must_use]
    pub fn rounds(&self, impressions: &[Impression], case: FeatureCase) -> Vec<Round> {
        let weights = self.weights(case);
        impressions
            .iter()
            .map(|impression| {
                let features = self.features(impression, case);
                let link = features
                    .dot(&weights)
                    .expect("feature and weight dimensions match by construction");
                let market_value = 1.0 / (1.0 + (-link).exp());
                Round {
                    features,
                    reserve_price: 0.0,
                    market_value,
                }
            })
            .collect()
    }

    /// Runs the pure ellipsoid mechanism (logistic model) over a fresh
    /// impression stream.
    #[must_use]
    pub fn run_mechanism(
        &self,
        impressions: &[Impression],
        case: FeatureCase,
        seed: u64,
    ) -> SimulationOutcome {
        let rounds = self.rounds(impressions, case);
        let dim = rounds[0].features.len();
        let weights = self.weights(case);
        let weight_bound = 2.0 * weights.norm().max(1.0);
        let feature_bound = rounds.iter().map(|r| r.features.norm()).fold(1.0, f64::max);
        let env = ReplayEnvironment::new(rounds, weight_bound, feature_bound);
        let horizon = env.horizon();
        let config = PricingConfig::for_environment(&env, horizon).with_reserve(false);
        let mechanism = EllipsoidPricing::new(LogisticModel::new(dim), config);
        let mut rng = StdRng::seed_from_u64(seed);
        Simulation::new(env, mechanism).run(&mut rng)
    }
}

/// Convenience: generate a click log, train on the leading portion, and
/// return the pipeline plus the held-out impressions used for pricing.
#[must_use]
pub fn default_pipeline(
    num_impressions: usize,
    dim: usize,
    seed: u64,
) -> (AvazuPipeline, Vec<Impression>) {
    let (impressions, _truth) = AvazuGenerator::new(num_impressions, 22, -1.8).generate(seed);
    // Chronological split: train on the leading 80 %, price the trailing 20 %.
    let cut = num_impressions * 4 / 5;
    let pipeline = AvazuPipeline::train(&impressions[..cut], dim, seed);
    (pipeline, impressions[cut..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_produces_a_sparse_predictive_model() {
        let (pipeline, _rest) = default_pipeline(20_000, 128, 7);
        assert_eq!(pipeline.dim, 128);
        // The paper reports ≈ 21–23 active weights and log-loss ≈ 0.41.
        let active = pipeline.num_active_weights();
        assert!((5..=80).contains(&active), "active weights: {active}");
        assert!(
            pipeline.train_log_loss < 0.65,
            "log loss was {}",
            pipeline.train_log_loss
        );
    }

    #[test]
    fn dense_case_shrinks_the_dimension() {
        let (pipeline, rest) = default_pipeline(10_000, 128, 9);
        let sparse = pipeline.features(&rest[0], FeatureCase::Sparse);
        let dense = pipeline.features(&rest[0], FeatureCase::Dense);
        assert_eq!(sparse.len(), 128);
        assert_eq!(dense.len(), pipeline.num_active_weights());
        assert!(dense.len() < sparse.len());
        // Link values stay close between the two treatments: only coordinates
        // with |w| below the significance threshold were dropped, and at most
        // nine tokens fire per impression.
        let sparse_link = sparse.dot(&pipeline.weights(FeatureCase::Sparse)).unwrap();
        let dense_link = dense.dot(&pipeline.weights(FeatureCase::Dense)).unwrap();
        assert!((sparse_link - dense_link).abs() < 9.5 * SIGNIFICANT_WEIGHT);
    }

    #[test]
    fn rounds_are_valid_ctr_prices() {
        let (pipeline, rest) = default_pipeline(8_000, 128, 11);
        let rounds = pipeline.rounds(&rest[..500], FeatureCase::Sparse);
        for round in &rounds {
            assert!((0.0..=1.0).contains(&round.market_value));
            assert_eq!(round.reserve_price, 0.0);
        }
    }

    #[test]
    fn dense_pricing_converges_faster_than_sparse() {
        let (pipeline, rest) = default_pipeline(12_000, 128, 13);
        let stream = &rest[..1_500.min(rest.len())];
        let sparse = pipeline.run_mechanism(stream, FeatureCase::Sparse, 1);
        let dense = pipeline.run_mechanism(stream, FeatureCase::Dense, 1);
        // Fig. 5(c): at the same number of rounds the dense case has the
        // lower regret ratio because it does not spend rounds eliminating
        // zero weights.
        assert!(
            dense.regret_ratio() <= sparse.regret_ratio() + 0.02,
            "dense {} vs sparse {}",
            dense.regret_ratio(),
            sparse.regret_ratio()
        );
    }
}
