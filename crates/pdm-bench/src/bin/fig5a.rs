//! Fig. 5(a) — regret ratios of the four versions and the risk-averse baseline at n = 100.
//!
//! Thin shim over the shared `bench` front end: identical to
//! `bench fig5a` and accepts the same flags (`--full`, `--workers`,
//! `--reps`, `--json`, `--check`).

fn main() {
    std::process::exit(pdm_bench::cli::shim("fig5a"));
}
