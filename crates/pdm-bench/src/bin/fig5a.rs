//! Fig. 5(a) — regret ratios of the four mechanism versions and the
//! risk-averse baseline in the noisy-linear-query market at n = 100.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin fig5a            # quick scale
//! cargo run -p pdm-bench --release --bin fig5a -- --full  # paper scale (n = 100, T = 1e5)
//! ```

use pdm_bench::linear_market::{run_reserve_baseline, run_version, LinearMarketConfig, Version};
use pdm_bench::{table, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = LinearMarketConfig {
        dim: scale.pick(40, 100),
        rounds: scale.pick(20_000, 100_000),
        num_owners: scale.pick(300, 1_000),
        delta: 0.01,
        seed: 42,
    };
    println!(
        "Fig. 5(a) — regret ratios, noisy linear query, n = {}, T = {} ({})",
        config.dim,
        config.rounds,
        scale.label()
    );
    println!();

    let checkpoints = [10, 100, 1_000, config.rounds / 10, config.rounds];
    let mut rows = Vec::new();
    for version in Version::ALL {
        let outcome = run_version(&config, version);
        let mut row = vec![version.label().to_owned()];
        for &cp in &checkpoints {
            let ratio = outcome.trace_at(cp).map_or(f64::NAN, |s| s.regret_ratio);
            row.push(table::pct(ratio));
        }
        rows.push(row);
    }
    let baseline = run_reserve_baseline(&config);
    let mut row = vec!["risk-averse baseline (post reserve)".to_owned()];
    for &cp in &checkpoints {
        let ratio = baseline.trace_at(cp).map_or(f64::NAN, |s| s.regret_ratio);
        row.push(table::pct(ratio));
    }
    rows.push(row);

    let header_labels: Vec<String> = checkpoints.iter().map(|c| format!("t={c}")).collect();
    let mut headers = vec!["mechanism"];
    headers.extend(header_labels.iter().map(String::as_str));
    println!("{}", table::render(&headers, &rows));
    println!(
        "Paper reference points at T = 1e5, n = 100: pure 8.48%, with uncertainty 11.19%, with \
         reserve 7.77%, with reserve and uncertainty 9.87%, risk-averse baseline 18.16%. The \
         reserve versions should show markedly lower ratios at small t (cold-start mitigation)."
    );
}
