//! Fig. 1 — the asymmetric single-round regret shape.
//!
//! Thin shim over the shared `bench` front end: identical to
//! `bench fig1` and accepts the same flags (`--full`, `--workers`,
//! `--reps`, `--json`, `--check`).

fn main() {
    std::process::exit(pdm_bench::cli::shim("fig1"));
}
