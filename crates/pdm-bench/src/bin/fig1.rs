//! Fig. 1 — the single-round regret of a posted-price mechanism with a
//! reserve price constraint, as a function of the posted price.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin fig1
//! ```

use pdm_bench::table;
use pdm_pricing::regret::single_round_regret;

fn main() {
    let market_value = 4.0;
    let reserve_price = 1.0;
    println!(
        "Fig. 1 — single-round regret (market value = {market_value}, reserve = {reserve_price})"
    );
    println!();

    let mut rows = Vec::new();
    let mut posted = 0.0;
    while posted <= 6.0 + 1e-9 {
        let regret = single_round_regret(posted, market_value, reserve_price);
        let note = if posted < reserve_price {
            "below reserve (never posted)"
        } else if posted <= market_value {
            "sale: regret = value − price"
        } else {
            "no sale: regret = full value"
        };
        rows.push(vec![
            table::fmt(posted, 2),
            table::fmt(regret, 2),
            note.to_owned(),
        ]);
        posted += 0.5;
    }
    println!(
        "{}",
        table::render(&["posted price", "regret", "regime"], &rows)
    );
    println!(
        "The cliff at the market value ({market_value}) is the asymmetry that makes a slight \
         overestimate far more costly than a slight underestimate."
    );

    // The zero-regret case when the reserve exceeds the value.
    let regret = single_round_regret(5.0, 4.0, 4.5);
    println!();
    println!(
        "With reserve 4.5 > value 4.0 the round is unsellable and the regret is {regret} for any posted price."
    );
}
