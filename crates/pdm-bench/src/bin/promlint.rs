//! `promlint` — lints Prometheus text expositions (`bench --metrics-out`
//! scrapes, or any file in exposition format 0.0.4).
//!
//! Usage: `promlint FILE...`
//!
//! Each file is parsed with [`pdm_obs::prom::parse`], which checks the
//! structural invariants of the format: valid metric names, one `# TYPE`
//! per family, numeric samples, and cumulative histogram buckets ending in
//! a `+Inf` bucket that agrees with `_count`.  Exit status is non-zero if
//! any file fails, so CI can gate on the scrapes every bench workload
//! writes.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: promlint FILE...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: read: {e}");
                failed = true;
                continue;
            }
        };
        match pdm_obs::prom::parse(&text) {
            Ok(report) => println!(
                "{path}: OK ({} families, {} samples)",
                report.families, report.samples
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
