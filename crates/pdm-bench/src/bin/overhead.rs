//! Section V-D — per-round online latency and memory overhead of the three
//! applications, plus the exact-polytope (two LPs per round) ablation that
//! motivates the ellipsoid relaxation.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin overhead            # quick scale
//! cargo run -p pdm-bench --release --bin overhead -- --full  # paper scale
//! ```

use pdm_bench::airbnb_pipeline;
use pdm_bench::avazu_pipeline::{self, FeatureCase};
use pdm_bench::linear_market::{run_version, LinearMarketConfig, Version};
use pdm_bench::{table, Scale};
use pdm_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    println!(
        "Section V-D — per-round latency and memory ({})",
        scale.label()
    );
    println!();

    let mut rows = Vec::new();

    // Application 1: noisy linear query, n = 100 (paper: 0.115 ms, 151 MB).
    let config = LinearMarketConfig {
        dim: scale.pick(40, 100),
        rounds: scale.pick(3_000, 20_000),
        num_owners: scale.pick(200, 1_000),
        delta: 0.0,
        seed: 42,
    };
    let outcome = run_version(&config, Version::WithReserve);
    rows.push(overhead_row(
        &format!("noisy linear query (linear, n = {})", config.dim),
        &outcome,
    ));

    // Application 2: accommodation rental, n = 55 (paper: 0.019 ms, 105 MB).
    let pipeline = airbnb_pipeline::default_pipeline(scale.pick(4_000, 20_000), 42);
    let outcome = pipeline.run_mechanism(Some(0.6), 1);
    rows.push(overhead_row(
        &format!(
            "accommodation rental (log-linear, n = {})",
            pipeline.feature_dim
        ),
        &outcome,
    ));

    // Application 3: impression pricing, sparse and dense
    // (paper at n = 1024: 3.509 ms sparse, 0.024 ms dense).
    let dim = scale.pick(128, 1024);
    let (avazu, holdout) = avazu_pipeline::default_pipeline(scale.pick(20_000, 120_000), dim, 42);
    let stream: Vec<_> = holdout
        .into_iter()
        .cycle()
        .take(scale.pick(2_000, 20_000))
        .collect();
    for case in [FeatureCase::Sparse, FeatureCase::Dense] {
        let outcome = avazu.run_mechanism(&stream, case, 1);
        let effective_dim = match case {
            FeatureCase::Sparse => dim,
            FeatureCase::Dense => avazu.num_active_weights(),
        };
        rows.push(overhead_row(
            &format!(
                "impression (logistic, {} case, n = {effective_dim})",
                case.label()
            ),
            &outcome,
        ));
    }

    println!(
        "{}",
        table::render(
            &[
                "application",
                "mean latency/round",
                "max latency/round",
                "knowledge-set memory",
            ],
            &rows
        )
    );

    // Ablation: exact polytope pricing (two LPs per round) vs the ellipsoid.
    println!();
    println!("Ablation — ellipsoid vs exact polytope knowledge set (the paper's motivation):");
    let dim = 10;
    let rounds = scale.pick(150, 400);
    let mut rng = StdRng::seed_from_u64(3);
    let env = SyntheticLinearEnvironment::builder(dim)
        .rounds(rounds)
        .build(&mut rng);
    let cfg = PricingConfig::for_environment(&env, rounds);
    let mut rng_run = StdRng::seed_from_u64(4);
    let ell = Simulation::new(
        env.clone(),
        EllipsoidPricing::new(LinearModel::new(dim), cfg),
    )
    .run(&mut rng_run);
    let mut rng_run = StdRng::seed_from_u64(4);
    let poly = Simulation::new(env, ExactPolytopePricing::exact(LinearModel::new(dim), cfg))
        .run(&mut rng_run);
    let rows = vec![
        vec![
            "ellipsoid (this paper)".to_owned(),
            format!("{:.3} µs", ell.round_latency_micros.mean()),
            table::pct(ell.regret_ratio()),
        ],
        vec![
            "exact polytope (two LPs per round)".to_owned(),
            format!("{:.3} µs", poly.round_latency_micros.mean()),
            table::pct(poly.regret_ratio()),
        ],
    ];
    println!(
        "{}",
        table::render(
            &["knowledge set", "mean latency/round", "regret ratio"],
            &rows
        )
    );
    println!(
        "The polytope's per-round cost grows with the number of accumulated constraints, while \
         the ellipsoid stays O(n²) — the gap widens with the horizon."
    );
}

fn overhead_row(label: &str, outcome: &SimulationOutcome) -> Vec<String> {
    vec![
        label.to_owned(),
        format!("{:.3} ms", outcome.round_latency_micros.mean() / 1_000.0),
        format!("{:.3} ms", outcome.round_latency_micros.max() / 1_000.0),
        format!(
            "{:.2} MB",
            outcome.memory_footprint_bytes as f64 / (1024.0 * 1024.0)
        ),
    ]
}
