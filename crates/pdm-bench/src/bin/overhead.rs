//! Section V-D — per-round latency and memory of the three applications.
//!
//! Thin shim over the shared `bench` front end: identical to
//! `bench overhead` and accepts the same flags (`--full`, `--workers`,
//! `--reps`, `--json`, `--check`).

fn main() {
    std::process::exit(pdm_bench::cli::shim("overhead"));
}
