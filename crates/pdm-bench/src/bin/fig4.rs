//! Fig. 4(a)–(f) — cumulative regret of the four mechanism versions in the
//! noisy-linear-query market, for feature dimensions n ∈ {1, 20, 40, 60, 80,
//! 100}.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin fig4            # quick scale
//! cargo run -p pdm-bench --release --bin fig4 -- --full  # paper scale
//! ```

use pdm_bench::linear_market::{run_version, LinearMarketConfig, Version};
use pdm_bench::{table, Scale};

fn main() {
    let scale = Scale::from_args();
    println!(
        "Fig. 4 — cumulative regret, noisy linear query ({})",
        scale.label()
    );
    println!();

    let dims: Vec<usize> = scale.pick(vec![1, 20, 40], vec![1, 20, 40, 60, 80, 100]);
    for dim in dims {
        let rounds = match scale {
            Scale::Quick => LinearMarketConfig::paper_horizon(dim).min(5_000),
            Scale::Full => LinearMarketConfig::paper_horizon(dim),
        };
        let config = LinearMarketConfig {
            dim,
            rounds,
            num_owners: scale.pick(200, 1_000),
            delta: 0.01,
            seed: 42,
        };
        println!("--- n = {dim}, T = {rounds} ---");
        let checkpoints = checkpoint_list(rounds);
        let mut rows = Vec::new();
        for version in Version::ALL {
            let outcome = run_version(&config, version);
            let mut row = vec![version.label().to_owned()];
            for &cp in &checkpoints {
                let regret = outcome
                    .trace_at(cp)
                    .map_or(f64::NAN, |s| s.cumulative_regret);
                row.push(table::fmt(regret, 1));
            }
            rows.push(row);
        }
        let mut headers = vec!["version"];
        let header_labels: Vec<String> = checkpoints.iter().map(|c| format!("t={c}")).collect();
        headers.extend(header_labels.iter().map(String::as_str));
        println!("{}", table::render(&headers, &rows));
    }
    println!(
        "Expected shape: regret grows with n; the reserve-price versions sit below their \
         no-reserve counterparts; the uncertainty buffer adds regret at large t."
    );
}

fn checkpoint_list(rounds: usize) -> Vec<usize> {
    let candidates = [rounds / 100, rounds / 10, rounds / 4, rounds / 2, rounds];
    let mut list: Vec<usize> = candidates.iter().copied().filter(|&c| c >= 1).collect();
    list.dedup();
    list
}
