//! Fig. 4(a)–(f) — cumulative regret of the four mechanism versions in the noisy-linear-query market.
//!
//! Thin shim over the shared `bench` front end: identical to
//! `bench fig4` and accepts the same flags (`--full`, `--workers`,
//! `--reps`, `--json`, `--check`).

fn main() {
    std::process::exit(pdm_bench::cli::shim("fig4"));
}
