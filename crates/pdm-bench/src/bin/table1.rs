//! Table I — per-round statistics of the version with reserve price.
//!
//! Thin shim over the shared `bench` front end: identical to
//! `bench table1` and accepts the same flags (`--full`, `--workers`,
//! `--reps`, `--json`, `--check`).

fn main() {
    std::process::exit(pdm_bench::cli::shim("table1"));
}
