//! Table I — per-round statistics (mean and standard deviation of market
//! value, reserve price, posted price, and regret) of the version with
//! reserve price, for each feature dimension of the noisy-linear-query
//! experiment.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin table1            # quick scale
//! cargo run -p pdm-bench --release --bin table1 -- --full  # paper scale
//! ```

use pdm_bench::linear_market::{run_version, LinearMarketConfig, Version};
use pdm_bench::{table, Scale};

fn main() {
    let scale = Scale::from_args();
    println!(
        "Table I — statistics per round under the version with reserve price ({})",
        scale.label()
    );
    println!();

    let dims: Vec<usize> = scale.pick(vec![1, 20, 40], vec![1, 20, 40, 60, 80, 100]);
    let mut rows = Vec::new();
    for dim in dims {
        let rounds = match scale {
            Scale::Quick => LinearMarketConfig::paper_horizon(dim).min(5_000),
            Scale::Full => LinearMarketConfig::paper_horizon(dim),
        };
        let config = LinearMarketConfig {
            dim,
            rounds,
            num_owners: scale.pick(200, 1_000),
            delta: 0.01,
            seed: 42,
        };
        let outcome = run_version(&config, Version::WithReserve);
        let report = &outcome.report;
        let cell = |stats: &pdm_linalg::OnlineStats| {
            format!(
                "{} ({})",
                table::fmt(stats.mean(), 3),
                table::fmt(stats.population_std(), 3)
            )
        };
        rows.push(vec![
            dim.to_string(),
            rounds.to_string(),
            cell(&report.market_value_stats),
            cell(&report.reserve_price_stats),
            cell(&report.posted_price_stats),
            cell(&report.regret_stats),
            table::pct(report.regret_ratio()),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "n",
                "T",
                "market value",
                "reserve price",
                "posted price",
                "regret",
                "regret ratio",
            ],
            &rows
        )
    );
    println!("Entries are mean (population standard deviation), as in the paper's Table I.");
    println!(
        "Paper reference (their MovieLens compensations): e.g. n = 20: value 3.874 (1.278), \
         reserve 3.388 (0.776), posted 3.685 (1.631), regret 0.166 (0.824)."
    );
}
