//! The parallel experiment runner: every figure and table of Section V as
//! subcommands of one binary, executed across a worker pool with
//! deterministic per-job seeding and an optional machine-readable
//! `BENCH_*.json` report.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin bench -- all                 # quick scale
//! cargo run -p pdm-bench --release --bin bench -- fig4 --full         # paper scale
//! cargo run -p pdm-bench --release --bin bench -- all --workers 8 \
//!     --reps 5 --json BENCH_all.json --check
//! ```
//!
//! Run with `--help` for the full flag reference; the JSON schema is
//! documented in `docs/BENCHMARKS.md`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(pdm_bench::cli::main_with(None, &args));
}
