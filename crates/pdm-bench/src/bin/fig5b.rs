//! Fig. 5(b) — regret ratios for accommodation rental under the log-linear model.
//!
//! Thin shim over the shared `bench` front end: identical to
//! `bench fig5b` and accepts the same flags (`--full`, `--workers`,
//! `--reps`, `--json`, `--check`).

fn main() {
    std::process::exit(pdm_bench::cli::shim("fig5b"));
}
