//! Fig. 5(b) — regret ratios for accommodation rental under the log-linear
//! model, as the reserve's log-ratio `ln q / ln v` varies over
//! {0.4, 0.6, 0.8}, plus the pure version and the risk-averse baseline.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin fig5b            # quick scale
//! cargo run -p pdm-bench --release --bin fig5b -- --full  # paper scale (74,111 listings)
//! ```

use pdm_bench::airbnb_pipeline::default_pipeline;
use pdm_bench::{table, Scale};

fn main() {
    let scale = Scale::from_args();
    let num_listings = scale.pick(8_000, 74_111);
    println!(
        "Fig. 5(b) — regret ratios, accommodation rental (log-linear model), {num_listings} listings ({})",
        scale.label()
    );
    let pipeline = default_pipeline(num_listings, 42);
    println!(
        "pipeline: n = {}, held-out MSE = {:.3} (rescaled log scale), log-price scale = {:.3}",
        pipeline.feature_dim, pipeline.test_mse, pipeline.log_price_scale
    );
    println!();

    let horizon = pipeline.rows.len();
    let checkpoints = [100, 1_000, horizon / 4, horizon];
    let header_labels: Vec<String> = checkpoints.iter().map(|c| format!("t={c}")).collect();
    let mut headers = vec!["series"];
    headers.extend(header_labels.iter().map(String::as_str));

    let mut rows = Vec::new();
    // Pure version (no reserve).
    let pure = pipeline.run_mechanism(None, 1);
    rows.push(series_row("pure version", &pure, &checkpoints));
    // Reserve versions at the three log-ratios, plus the baseline at each.
    for ratio in [0.4, 0.6, 0.8] {
        let ours = pipeline.run_mechanism(Some(ratio), 1);
        rows.push(series_row(
            &format!("with reserve, ln q/ln v = {ratio}"),
            &ours,
            &checkpoints,
        ));
        let baseline = pipeline.run_baseline(ratio, 1);
        rows.push(series_row(
            &format!("risk-averse baseline, ln q/ln v = {ratio}"),
            &baseline,
            &checkpoints,
        ));
    }
    println!("{}", table::render(&headers, &rows));
    println!(
        "Paper reference points at T = 74,111: pure 4.57%, reserve ratios 0.4/0.6/0.8 give \
         4.01%/3.83%/3.79%, the risk-averse baseline 23.40%/17.00%/9.33%. Expected shape: the \
         closer the reserve is to the value, the stronger the cold-start mitigation, and the \
         mechanism beats the baseline by a wide margin at every ratio."
    );
}

fn series_row(
    label: &str,
    outcome: &pdm_pricing::simulation::SimulationOutcome,
    checkpoints: &[usize],
) -> Vec<String> {
    let mut row = vec![label.to_owned()];
    for &cp in checkpoints {
        let ratio = outcome.trace_at(cp).map_or(f64::NAN, |s| s.regret_ratio);
        row.push(table::pct(ratio));
    }
    row
}
