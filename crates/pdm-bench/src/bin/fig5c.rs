//! Fig. 5(c) — regret ratios for impression pricing under the logistic model,
//! in the sparse and dense feature cases at hashing dimensions 128 and 1024.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin fig5c            # quick scale
//! cargo run -p pdm-bench --release --bin fig5c -- --full  # paper scale (n = 1024, T = 1e5)
//! ```

use pdm_bench::avazu_pipeline::{default_pipeline, FeatureCase};
use pdm_bench::{table, Scale};

fn main() {
    let scale = Scale::from_args();
    println!(
        "Fig. 5(c) — regret ratios, impression pricing (logistic model) ({})",
        scale.label()
    );
    println!();

    let dims: Vec<usize> = scale.pick(vec![128], vec![128, 1024]);
    let train_size = scale.pick(40_000, 200_000);
    let pricing_rounds = scale.pick(8_000, 100_000);

    for dim in dims {
        let (pipeline, holdout) = default_pipeline(train_size + pricing_rounds, dim, 42);
        println!(
            "--- n = {dim}: FTRL log-loss {:.3}, {} significantly non-zero weights ---",
            pipeline.train_log_loss,
            pipeline.num_active_weights()
        );
        let stream: Vec<_> = holdout.into_iter().cycle().take(pricing_rounds).collect();
        let checkpoints = [100, 1_000, pricing_rounds / 4, pricing_rounds];
        let header_labels: Vec<String> = checkpoints.iter().map(|c| format!("t={c}")).collect();
        let mut headers = vec!["case"];
        headers.extend(header_labels.iter().map(String::as_str));

        let mut rows = Vec::new();
        for case in [FeatureCase::Sparse, FeatureCase::Dense] {
            let outcome = pipeline.run_mechanism(&stream, case, 1);
            let mut row = vec![format!(
                "{} (d = {})",
                case.label(),
                match case {
                    FeatureCase::Sparse => dim,
                    FeatureCase::Dense => pipeline.num_active_weights(),
                }
            )];
            for &cp in &checkpoints {
                let ratio = outcome.trace_at(cp).map_or(f64::NAN, |s| s.regret_ratio);
                row.push(table::pct(ratio));
            }
            rows.push(row);
        }
        println!("{}", table::render(&headers, &rows));
    }
    println!(
        "Paper reference points at T = 1e5: sparse/dense regret ratios of 2.02%/0.41% at n = 128 \
         and 8.04%/0.89% at n = 1024. Expected shape: the sparse case converges more slowly \
         (early rounds are spent eliminating zero weights), and both keep falling with t."
    );
}
