//! Fig. 5(c) — regret ratios for impression pricing under the logistic model.
//!
//! Thin shim over the shared `bench` front end: identical to
//! `bench fig5c` and accepts the same flags (`--full`, `--workers`,
//! `--reps`, `--json`, `--check`).

fn main() {
    std::process::exit(pdm_bench::cli::shim("fig5c"));
}
