//! Regret-scaling checks for Theorems 1 and 3, plus the exploration-threshold
//! (ε) ablation.
//!
//! * Theorem 3: in the one-dimensional case the cumulative regret grows like
//!   `O(log T)` — doubling T should add roughly a constant amount of regret.
//! * Theorem 1: at a fixed horizon the regret grows roughly like `n² log T`
//!   in the feature dimension.
//! * ε ablation: the paper's schedule `ε = n²/T` balances exploration and
//!   exploitation; much smaller or larger thresholds hurt.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin regret_scaling [-- --full]
//! ```

use pdm_bench::linear_market::{run_version, LinearMarketConfig, Version};
use pdm_bench::{table, Scale};
use pdm_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    println!(
        "Regret scaling (Theorems 1 and 3) and ε ablation ({})",
        scale.label()
    );
    println!();

    one_dimensional_scaling(scale);
    dimension_scaling(scale);
    epsilon_ablation(scale);
}

/// Theorem 3: O(log T) regret in the one-dimensional case.
fn one_dimensional_scaling(scale: Scale) {
    println!("-- one-dimensional case: cumulative regret vs T (expect ~constant increments per doubling) --");
    let horizons: Vec<usize> = scale.pick(
        vec![250, 500, 1_000, 2_000],
        vec![1_000, 2_000, 4_000, 8_000, 16_000],
    );
    let mut rows = Vec::new();
    for &t in &horizons {
        let mut rng = StdRng::seed_from_u64(7);
        let env = SyntheticLinearEnvironment::builder(1)
            .rounds(t)
            .build(&mut rng);
        let config = PricingConfig::for_environment(&env, t).with_reserve(false);
        let mechanism = OneDimPricing::one_dimensional(config);
        let mut run_rng = StdRng::seed_from_u64(8);
        let outcome = Simulation::new(env, mechanism).run(&mut run_rng);
        rows.push(vec![
            t.to_string(),
            table::fmt(outcome.cumulative_regret(), 3),
            table::pct(outcome.regret_ratio()),
        ]);
    }
    println!(
        "{}",
        table::render(&["T", "cumulative regret", "regret ratio"], &rows)
    );
}

/// Theorem 1: regret growth with the feature dimension at a fixed horizon.
fn dimension_scaling(scale: Scale) {
    println!("-- regret vs feature dimension at fixed T (expect roughly n² log growth) --");
    let rounds = scale.pick(3_000, 20_000);
    let dims: Vec<usize> = scale.pick(vec![5, 10, 20, 40], vec![10, 20, 40, 80]);
    let mut rows = Vec::new();
    for &dim in &dims {
        let config = LinearMarketConfig {
            dim,
            rounds,
            num_owners: scale.pick(200, 600),
            delta: 0.0,
            seed: 11,
        };
        let outcome = run_version(&config, Version::WithReserve);
        rows.push(vec![
            dim.to_string(),
            table::fmt(outcome.cumulative_regret(), 1),
            table::pct(outcome.regret_ratio()),
        ]);
    }
    println!(
        "{}",
        table::render(&["n", "cumulative regret", "regret ratio"], &rows)
    );
}

/// Design-choice ablation: the exploration threshold ε.
fn epsilon_ablation(scale: Scale) {
    println!("-- ε ablation at fixed n and T (the paper's schedule is ε = n²/T) --");
    let dim = 10;
    let rounds = scale.pick(4_000, 20_000);
    let paper_epsilon = (dim * dim) as f64 / rounds as f64;
    let multipliers = [0.01, 0.1, 1.0, 10.0, 100.0];
    let mut rows = Vec::new();
    for &m in &multipliers {
        let epsilon = paper_epsilon * m;
        let mut rng = StdRng::seed_from_u64(13);
        let env = SyntheticLinearEnvironment::builder(dim)
            .rounds(rounds)
            .build(&mut rng);
        let config = PricingConfig::for_environment(&env, rounds)
            .with_reserve(true)
            .with_epsilon(epsilon);
        let mechanism = EllipsoidPricing::new(LinearModel::new(dim), config);
        let mut run_rng = StdRng::seed_from_u64(14);
        let outcome = Simulation::new(env, mechanism).run(&mut run_rng);
        rows.push(vec![
            format!("{m} × n²/T"),
            format!("{epsilon:.5}"),
            table::fmt(outcome.cumulative_regret(), 1),
            table::pct(outcome.regret_ratio()),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["ε multiplier", "ε", "cumulative regret", "regret ratio"],
            &rows
        )
    );
    println!(
        "Expected shape: very small ε over-explores, very large ε stops learning too early; the \
         paper's schedule sits near the minimum."
    );
}
