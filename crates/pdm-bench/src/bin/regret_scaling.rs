//! Theorems 1 & 3 — regret growth in T and n, plus the ε ablation.
//!
//! Thin shim over the shared `bench` front end: identical to
//! `bench regret-scaling` and accepts the same flags (`--full`, `--workers`,
//! `--reps`, `--json`, `--check`).

fn main() {
    std::process::exit(pdm_bench::cli::shim("regret_scaling"));
}
