//! Lemma 8 / Fig. 6 — the conservative-cut ablation.
//!
//! Thin shim over the shared `bench` front end: identical to
//! `bench lemma8` and accepts the same flags (`--full`, `--workers`,
//! `--reps`, `--json`, `--check`).

fn main() {
    std::process::exit(pdm_bench::cli::shim("lemma8"));
}
