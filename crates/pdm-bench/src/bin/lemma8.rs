//! Lemma 8 / Fig. 6 ablation — if conservative posted prices are allowed to
//! refine the knowledge set, an adversary that pins the reserve to the middle
//! price in the first half of the horizon forces Ω(T) regret; the correct
//! mechanism (which never cuts on conservative prices) stays logarithmic.
//!
//! ```text
//! cargo run -p pdm-bench --release --bin lemma8            # quick scale
//! cargo run -p pdm-bench --release --bin lemma8 -- --full
//! ```

use pdm_bench::{table, Scale};
use pdm_linalg::Vector;
use pdm_pricing::prelude::*;

fn main() {
    let scale = Scale::from_args();
    println!(
        "Lemma 8 ablation — conservative-price cuts under the adversarial sequence ({})",
        scale.label()
    );
    println!();

    let horizons: Vec<usize> = scale.pick(
        vec![200, 400, 800, 1_600],
        vec![500, 1_000, 2_000, 4_000, 8_000, 16_000],
    );
    let theta_star = Vector::from_slice(&[0.5, 0.5]);

    let mut rows = Vec::new();
    for &horizon in &horizons {
        let adversary = AdversarialLemma8Environment::new(horizon, theta_star.clone());
        let base = PricingConfig::new(1.0, horizon).with_reserve(true);

        let mut correct = EllipsoidPricing::new(LinearModel::new(2), base);
        let correct_regret = adversary.play(&mut correct).cumulative_regret();

        let mut misbehaving =
            EllipsoidPricing::new(LinearModel::new(2), base.with_conservative_cuts(true));
        let misbehaving_regret = adversary.play(&mut misbehaving).cumulative_regret();

        rows.push(vec![
            horizon.to_string(),
            table::fmt(correct_regret, 2),
            table::fmt(misbehaving_regret, 2),
            table::fmt(misbehaving_regret / correct_regret.max(1e-9), 1),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "T",
                "correct mechanism",
                "cuts on conservative",
                "blow-up factor"
            ],
            &rows
        )
    );
    println!(
        "Expected shape: the misbehaving variant pays a large constant-factor penalty at every \
         horizon. (In exact arithmetic its regret is Ω(T); in f64 the orthogonal-axis expansion \
         saturates once the repeatedly-cut axis reaches the numerical floor, which caps the \
         penalty — see EXPERIMENTS.md, experiment E8.)"
    );
}
