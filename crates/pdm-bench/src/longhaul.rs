//! The `bench longhaul` workload: sustained serving with WAL checkpoints
//! under traffic, a timed mid-run restore, and cold-tenant paging churn.
//!
//! Every cell spins up a paging-enabled [`MarketService`] (a resident cap
//! well below the tenant count, the WAL on) and pumps a rotating
//! active-window traffic trace through it: each wave serves a contiguous
//! window of tenants that slides every wave, so tenants keep falling cold
//! and paging back in.  The whole trace is precomputed, which lets the run
//! verify the tentpole contracts end to end:
//!
//! * **Snapshot under traffic** — a WAL checkpoint is taken every
//!   `checkpoint_every` waves while the service keeps serving; dirty-tenant
//!   tracking keeps each segment proportional to the tenants that actually
//!   changed, not the population.
//! * **Bit-identical restore** — at the halfway cut the service is rebuilt
//!   from the base snapshot plus the accumulated segments
//!   ([`MarketService::restore_with_wal`], timed as the restore-latency
//!   column), and **both** services then replay the identical second half
//!   of the trace.  Every posted price must agree bit for bit, and the
//!   pre-cut aggregates (quotes, sales, revenue, regret) must match
//!   exactly.  Paging counters are deliberately *not* compared: the
//!   restored service starts with a fresh LRU, so its eviction choices may
//!   differ while its arithmetic cannot.
//! * **Bounded residency** — after every wave, on both services, the
//!   materialised tenant count must not exceed the resident cap; the run
//!   fails otherwise.  Memory per tenant (hot footprints plus cold page
//!   bytes over the whole population) is reported as a column.
//!
//! [`MarketService`]: pdm_service::MarketService
//! [`MarketService::restore_with_wal`]: pdm_service::MarketService::restore_with_wal

use crate::grid::derive_seed;
use crate::runner::AggStat;
use crate::table;
use crate::Scale;
use pdm_linalg::{sampling, Json, Vector};
use pdm_service::{
    MarketService, MetricRegistry, OutcomeReport, QueryRequest, ServiceConfig, ShardMetrics,
    TenantConfig, TenantId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Base seed of the longhaul grid; each cell derives its traffic trace from
/// `derive_seed(LONGHAUL_SEED_BASE + cell_index, rep)`.
const LONGHAUL_SEED_BASE: u64 = 0x10A9;

/// Reserve prices are this fraction of the hidden market value, matching
/// the serve workload's convention.
const RESERVE_FRACTION: f64 = 0.6;

/// One cell of the longhaul grid: a paging-enabled service under a rotating
/// active-window trace with periodic WAL checkpoints.
#[derive(Debug, Clone)]
pub struct LonghaulCellSpec {
    /// Row label, e.g. `tenants=24/cap=8`.
    pub label: String,
    /// Number of registered tenants.
    pub tenants: usize,
    /// Feature dimension of every tenant's queries.
    pub dim: usize,
    /// Shard count of the service.
    pub shards: usize,
    /// Closed-loop waves to pump (the restore cut falls at the midpoint).
    pub waves: usize,
    /// Resident cap — far below `tenants`, so the trace forces churn.
    pub resident_capacity: usize,
    /// Tenant records per WAL segment.
    pub wal_segment_size: usize,
    /// A WAL checkpoint is taken every this many waves.
    pub checkpoint_every: usize,
    /// Base seed of the cell's traffic trace.
    pub seed: u64,
}

/// Wall-clock figures of one longhaul cell (excluded from the determinism
/// fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct LonghaulPerf {
    /// End-to-end seconds for the cell (trace + both runs + verify).
    pub wall_clock_secs: f64,
    /// Quotes served per second of drain time on the original service.
    pub quotes_per_sec: f64,
    /// Mean µs for one [`restore_with_wal`] rebuild (base + segments).
    ///
    /// [`restore_with_wal`]: pdm_service::MarketService::restore_with_wal
    pub restore_latency_micros: f64,
    /// Mean resident bytes per registered tenant at the end of a rep: hot
    /// tenants at their learned-state footprint, cold tenants at the length
    /// of their serialised page.
    pub memory_per_tenant_bytes: f64,
}

/// Everything the BENCH v6 report records about one longhaul cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LonghaulCellReport {
    /// Row label (from the cell spec).
    pub label: String,
    /// Registered tenants.
    pub tenants: u64,
    /// Service shard count.
    pub shards: u64,
    /// Closed-loop waves per repetition.
    pub waves: u64,
    /// Repetitions aggregated.
    pub reps: u64,
    /// Worker threads each drain ran on.
    pub workers: u64,
    /// The resident cap the run was bounded by.
    pub resident_capacity: u64,
    /// Tenant records per WAL segment.
    pub wal_segment_size: u64,
    /// Quotes served on the original service, summed over repetitions.
    pub quotes_served: u64,
    /// Outcome reports applied, summed over repetitions.
    pub observations: u64,
    /// Accepted quotes, summed over repetitions.
    pub sales: u64,
    /// Cold-tenant evictions on the original service, summed over reps.
    pub evictions: u64,
    /// Cold-tenant rehydrations on the original service, summed over reps.
    pub rehydrations: u64,
    /// WAL segments written per repetition (identical across reps by
    /// construction), summed over reps.
    pub wal_segments: u64,
    /// Highest materialised tenant count observed after any wave, across
    /// both services and every rep — the number the cap gate bounds.
    pub max_resident: u64,
    /// Cumulative revenue per repetition.
    pub revenue: AggStat,
    /// Cumulative exact regret per repetition.
    pub regret: AggStat,
    /// Acceptance rate per repetition.
    pub accept_rate: AggStat,
    /// Wall-clock throughput/latency/memory figures.
    pub perf: LonghaulPerf,
}

/// The longhaul grid at the given scale: one tenant population under two
/// resident caps (tight and tighter), both far below the population.
#[must_use]
pub fn longhaul_grid(scale: Scale) -> Vec<LonghaulCellSpec> {
    let tenants = scale.pick(24usize, 128);
    let dim = scale.pick(3, 8);
    let shards = scale.pick(4, 8);
    let waves = scale.pick(24, 96);
    let caps = scale.pick(vec![8usize, 6], vec![32, 16]);
    let wal_segment_size = scale.pick(8, 32);
    let checkpoint_every = scale.pick(4, 8);
    caps.into_iter()
        .enumerate()
        .map(|(index, cap)| LonghaulCellSpec {
            label: format!("tenants={tenants}/cap={cap}"),
            tenants,
            dim,
            shards,
            waves,
            resident_capacity: cap,
            wal_segment_size,
            checkpoint_every,
            seed: LONGHAUL_SEED_BASE + index as u64,
        })
        .collect()
}

/// One precomputed request of the traffic trace.
struct TraceRequest {
    tenant: u64,
    features: Vector,
    value: f64,
    reserve: f64,
}

/// The per-repetition outcome handed to the aggregator.
struct RepOutcome {
    revenue: f64,
    regret: f64,
    accept_rate: f64,
    metrics: ShardMetrics,
    wal_segments: u64,
    max_resident: usize,
    resident_memory_bytes: usize,
    restore_latency: Duration,
    drain_time: Duration,
    /// The *original* service's final `pdm-obs` scrape (the restored twin
    /// replays the same second half, so folding both would double-count the
    /// post-cut traffic).
    scrape: MetricRegistry,
}

/// Precomputes the full trace: each wave serves a sliding window of
/// tenants, so the same requests can replay against the original service
/// and the restored one.
fn build_trace(
    spec: &LonghaulCellSpec,
    traffic_seed: u64,
) -> Result<Vec<Vec<TraceRequest>>, String> {
    let window = spec
        .resident_capacity
        .max(spec.tenants / 4)
        .max(1)
        .min(spec.tenants);
    let mut streams: Vec<StdRng> = Vec::with_capacity(spec.tenants);
    let mut thetas: Vec<Vector> = Vec::with_capacity(spec.tenants);
    for id in 0..spec.tenants as u64 {
        let mut rng = StdRng::seed_from_u64(derive_seed(traffic_seed, id.wrapping_add(1)));
        thetas.push(
            sampling::unit_sphere(&mut rng, spec.dim)
                .map(f64::abs)
                .normalized(),
        );
        streams.push(rng);
    }
    let mut trace = Vec::with_capacity(spec.waves);
    for wave in 0..spec.waves {
        // The window slides three tenants per wave: fast enough that the
        // active set outruns the resident cap, slow enough that sessions
        // still accumulate rounds before falling cold.
        let start = (wave * 3) % spec.tenants;
        let mut requests = Vec::with_capacity(window);
        for offset in 0..window {
            let id = ((start + offset) % spec.tenants) as u64;
            let rng = &mut streams[id as usize];
            let features = sampling::standard_normal_vector(rng, spec.dim)
                .map(f64::abs)
                .normalized();
            let value = thetas[id as usize]
                .dot(&features)
                .map_err(|e| format!("{}: dot: {e}", spec.label))?;
            requests.push(TraceRequest {
                tenant: id,
                features,
                value,
                reserve: RESERVE_FRACTION * value,
            });
        }
        trace.push(requests);
    }
    Ok(trace)
}

/// Builds the cell's service and registers its tenants.
fn build_service(spec: &LonghaulCellSpec) -> Result<MarketService, String> {
    let window = spec.resident_capacity.max(spec.tenants / 4).max(1);
    let mut service = MarketService::new(ServiceConfig {
        shards: spec.shards,
        queue_capacity: window.max(4),
        resident_capacity: Some(spec.resident_capacity),
        wal_segment_size: Some(spec.wal_segment_size),
        ..ServiceConfig::default()
    })
    .map_err(|e| format!("{}: config: {e}", spec.label))?;
    let config = TenantConfig::standard(spec.dim, spec.waves);
    for id in 0..spec.tenants as u64 {
        service
            .register_tenant(TenantId(id), config)
            .map_err(|e| format!("{}: register: {e}", spec.label))?;
    }
    Ok(service)
}

/// Replays `waves` of the trace against `service`, collecting every posted
/// price bit in `(tenant, bits)` response order and enforcing the resident
/// cap after every wave.  Returns the accumulated drain time.
fn run_waves(
    label: &str,
    service: &mut MarketService,
    trace: &[Vec<TraceRequest>],
    workers: usize,
    bits: &mut Vec<(u64, u64)>,
    max_resident: &mut usize,
    cap: usize,
) -> Result<Duration, String> {
    let mut drain_time = Duration::ZERO;
    let mut responses = Vec::new();
    for requests in trace {
        for request in requests {
            service
                .submit_quote(QueryRequest {
                    tenant: TenantId(request.tenant),
                    features: request.features.clone(),
                    reserve_price: request.reserve,
                })
                .map_err(|e| format!("{label}: submit: {e}"))?;
        }
        responses.clear();
        let started = Instant::now();
        service.drain_into(workers, &mut responses);
        drain_time += started.elapsed();
        for response in &responses {
            let quote = response
                .quote()
                .ok_or_else(|| format!("{label}: expected a quote response"))?;
            let request = requests
                .iter()
                .find(|r| r.tenant == response.tenant.0)
                .ok_or_else(|| format!("{label}: response without a request"))?;
            bits.push((response.tenant.0, quote.posted_price.to_bits()));
            service
                .submit_outcome(OutcomeReport {
                    tenant: response.tenant,
                    accepted: quote.posted_price <= request.value,
                    market_value: Some(request.value),
                })
                .map_err(|e| format!("{label}: outcome: {e}"))?;
        }
        responses.clear();
        let started = Instant::now();
        service.drain_into(workers, &mut responses);
        drain_time += started.elapsed();
        let resident = service.resident_tenants();
        *max_resident = (*max_resident).max(resident);
        if resident > cap {
            return Err(format!(
                "{label}: {resident} tenants resident after a wave, above the cap of {cap}"
            ));
        }
    }
    Ok(drain_time)
}

/// Runs one repetition of one cell: first half with checkpoints under
/// traffic, the timed restore at the cut, then the identical second half on
/// both services with bit-for-bit comparison.
fn run_rep(spec: &LonghaulCellSpec, workers: usize, rep: u64) -> Result<RepOutcome, String> {
    let trace = build_trace(spec, derive_seed(spec.seed, rep))?;
    let cut = spec.waves / 2;
    let cap = spec.resident_capacity;
    let mut max_resident = 0usize;

    let mut original = build_service(spec)?;
    let base = original
        .snapshot()
        .map_err(|e| format!("{}: base snapshot: {e}", spec.label))?;
    let mut stream: Vec<Json> = Vec::new();
    let mut drain_time = Duration::ZERO;
    let mut pre_cut_bits = Vec::new();
    for (wave, requests) in trace[..cut].iter().enumerate() {
        drain_time += run_waves(
            &spec.label,
            &mut original,
            std::slice::from_ref(requests),
            workers,
            &mut pre_cut_bits,
            &mut max_resident,
            cap,
        )?;
        // Snapshot-under-traffic: the checkpoint interleaves with the load
        // instead of waiting for the run to end.
        if (wave + 1) % spec.checkpoint_every == 0 {
            stream.extend(
                original
                    .checkpoint()
                    .map_err(|e| format!("{}: checkpoint: {e}", spec.label))?,
            );
        }
    }
    // The cut checkpoint: the service is quiescent here, so base + stream is
    // a consistent point to rebuild from.
    stream.extend(
        original
            .checkpoint()
            .map_err(|e| format!("{}: cut checkpoint: {e}", spec.label))?,
    );

    let restore_started = Instant::now();
    let mut restored = MarketService::restore_with_wal(&base, &stream)
        .map_err(|e| format!("{}: restore: {e}", spec.label))?;
    let restore_latency = restore_started.elapsed();

    // The restored service must agree with the original on everything the
    // WAL promises to carry — the pricing arithmetic and its ledgers.  The
    // paging counters are excluded by design: a fresh LRU may evict
    // different tenants without changing a single priced bit.
    let original_cut = original.aggregate_metrics();
    let restored_cut = restored.aggregate_metrics();
    if restored_cut.quotes_served != original_cut.quotes_served
        || restored_cut.sales != original_cut.sales
        || restored_cut.revenue.to_bits() != original_cut.revenue.to_bits()
        || restored_cut.regret.to_bits() != original_cut.regret.to_bits()
    {
        return Err(format!(
            "{}: the WAL restore lost counters at the cut (quotes {} vs {}, revenue {} vs {})",
            spec.label,
            restored_cut.quotes_served,
            original_cut.quotes_served,
            restored_cut.revenue,
            original_cut.revenue,
        ));
    }

    // Second half: the identical trace against both services.
    let mut expected = Vec::new();
    drain_time += run_waves(
        &spec.label,
        &mut original,
        &trace[cut..],
        workers,
        &mut expected,
        &mut max_resident,
        cap,
    )?;
    let mut actual = Vec::new();
    run_waves(
        &spec.label,
        &mut restored,
        &trace[cut..],
        workers,
        &mut actual,
        &mut max_resident,
        cap,
    )?;
    if expected != actual {
        return Err(format!(
            "{}: the restored service diverged from the original over the post-cut trace \
             — WAL restore is not bit-identical",
            spec.label
        ));
    }

    let metrics = original.aggregate_metrics();
    Ok(RepOutcome {
        revenue: metrics.revenue,
        regret: metrics.regret,
        accept_rate: metrics.accept_rate(),
        wal_segments: original.wal_segments_written(),
        max_resident,
        resident_memory_bytes: original.resident_memory_bytes(),
        restore_latency,
        drain_time,
        metrics,
        scrape: original.scrape(),
    })
}

/// Runs one cell (all repetitions) and aggregates it into a report row,
/// folding every repetition's final original-service scrape into `obs`.
pub fn run_longhaul_cell_obs(
    spec: &LonghaulCellSpec,
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<LonghaulCellReport, String> {
    let started = Instant::now();
    let reps = reps.max(1);
    let mut revenue = Vec::with_capacity(reps as usize);
    let mut regret = Vec::with_capacity(reps as usize);
    let mut accept_rate = Vec::with_capacity(reps as usize);
    let mut metrics = ShardMetrics::new();
    let mut wal_segments = 0u64;
    let mut max_resident = 0usize;
    let mut memory_bytes = 0.0f64;
    let mut restore_time = Duration::ZERO;
    let mut drain_time = Duration::ZERO;
    for rep in 0..reps {
        let outcome = run_rep(spec, workers, rep)?;
        revenue.push(outcome.revenue);
        regret.push(outcome.regret);
        accept_rate.push(outcome.accept_rate);
        metrics.merge(&outcome.metrics);
        wal_segments += outcome.wal_segments;
        max_resident = max_resident.max(outcome.max_resident);
        memory_bytes += outcome.resident_memory_bytes as f64;
        restore_time += outcome.restore_latency;
        drain_time += outcome.drain_time;
        obs.merge(&outcome.scrape);
    }
    let drain_secs = drain_time.as_secs_f64();
    let quotes_per_sec = if drain_secs > 0.0 {
        metrics.quotes_served as f64 / drain_secs
    } else {
        0.0
    };
    Ok(LonghaulCellReport {
        label: spec.label.clone(),
        tenants: spec.tenants as u64,
        shards: spec.shards as u64,
        waves: spec.waves as u64,
        reps,
        workers: workers as u64,
        resident_capacity: spec.resident_capacity as u64,
        wal_segment_size: spec.wal_segment_size as u64,
        quotes_served: metrics.quotes_served,
        observations: metrics.observations,
        sales: metrics.sales,
        evictions: metrics.evictions,
        rehydrations: metrics.rehydrations,
        wal_segments,
        max_resident: max_resident as u64,
        revenue: AggStat::from_values(&revenue),
        regret: AggStat::from_values(&regret),
        accept_rate: AggStat::from_values(&accept_rate),
        perf: LonghaulPerf {
            wall_clock_secs: started.elapsed().as_secs_f64(),
            quotes_per_sec,
            restore_latency_micros: restore_time.as_secs_f64() * 1e6 / reps as f64,
            memory_per_tenant_bytes: memory_bytes / (reps as f64 * spec.tenants as f64),
        },
    })
}

/// [`run_longhaul_cell_obs`] with the scrape discarded, for callers that
/// only want the report row.
pub fn run_longhaul_cell(
    spec: &LonghaulCellSpec,
    workers: usize,
    reps: u64,
) -> Result<LonghaulCellReport, String> {
    run_longhaul_cell_obs(spec, workers, reps, &mut MetricRegistry::new())
}

/// Runs a set of longhaul cells (the whole grid, or a `--filter` subset),
/// folding every cell's scrape into `obs`.
pub fn run_longhaul_cells_obs(
    cells: &[LonghaulCellSpec],
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<Vec<LonghaulCellReport>, String> {
    cells
        .iter()
        .map(|spec| run_longhaul_cell_obs(spec, workers, reps, obs))
        .collect()
}

/// Runs a set of longhaul cells (the whole grid, or a `--filter` subset).
pub fn run_longhaul_cells(
    cells: &[LonghaulCellSpec],
    workers: usize,
    reps: u64,
) -> Result<Vec<LonghaulCellReport>, String> {
    run_longhaul_cells_obs(cells, workers, reps, &mut MetricRegistry::new())
}

/// Renders the longhaul cells as the console table `bench longhaul` prints.
#[must_use]
pub fn render_longhaul(cells: &[LonghaulCellReport]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.label.clone(),
                cell.quotes_served.to_string(),
                cell.evictions.to_string(),
                cell.rehydrations.to_string(),
                cell.wal_segments.to_string(),
                format!("{}/{}", cell.max_resident, cell.resident_capacity),
                table::fmt(cell.perf.memory_per_tenant_bytes, 0),
                table::fmt(cell.perf.restore_latency_micros, 1),
                table::fmt(cell.perf.quotes_per_sec, 0),
            ]
        })
        .collect();
    table::render(
        &[
            "cell",
            "quotes",
            "evict",
            "rehydrate",
            "wal segs",
            "resident",
            "B/tenant",
            "restore µs",
            "quotes/s",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell() -> LonghaulCellSpec {
        LonghaulCellSpec {
            label: "tenants=12/cap=4".to_owned(),
            tenants: 12,
            dim: 3,
            shards: 2,
            waves: 12,
            resident_capacity: 4,
            wal_segment_size: 4,
            checkpoint_every: 3,
            seed: 7,
        }
    }

    #[test]
    fn grid_scales_and_labels_carry_the_cap() {
        let quick = longhaul_grid(Scale::Quick);
        assert_eq!(quick.len(), 2);
        assert!(quick[0].label.contains("cap="));
        for cell in &quick {
            assert!(cell.resident_capacity < cell.tenants);
        }
        let full = longhaul_grid(Scale::Full);
        assert!(full[0].tenants > quick[0].tenants);
        assert!(full[0].waves > quick[0].waves);
    }

    #[test]
    fn cell_survives_its_own_restore_and_residency_gates() {
        let report = run_longhaul_cell(&tiny_cell(), 2, 1).unwrap();
        assert!(report.quotes_served > 0);
        assert_eq!(report.observations, report.quotes_served);
        assert!(
            report.evictions > 0,
            "a cap of 4 over 12 tenants must force paging"
        );
        assert!(report.rehydrations > 0);
        assert!(report.wal_segments > 0);
        assert!(report.max_resident <= report.resident_capacity);
        assert!(report.perf.restore_latency_micros > 0.0);
        assert!(report.perf.memory_per_tenant_bytes > 0.0);
        assert!(report.revenue.mean > 0.0);
    }

    #[test]
    fn worker_count_does_not_move_deterministic_aggregates() {
        let one = run_longhaul_cell(&tiny_cell(), 1, 1).unwrap();
        let two = run_longhaul_cell(&tiny_cell(), 2, 1).unwrap();
        assert_eq!(one.quotes_served, two.quotes_served);
        assert_eq!(one.sales, two.sales);
        assert_eq!(one.evictions, two.evictions);
        assert_eq!(one.rehydrations, two.rehydrations);
        assert_eq!(one.wal_segments, two.wal_segments);
        assert_eq!(one.max_resident, two.max_resident);
        assert_eq!(one.revenue.mean.to_bits(), two.revenue.mean.to_bits());
        assert_eq!(one.regret.mean.to_bits(), two.regret.mean.to_bits());
    }

    #[test]
    fn render_lists_every_column() {
        let report = run_longhaul_cell(&tiny_cell(), 1, 1).unwrap();
        let rendered = render_longhaul(std::slice::from_ref(&report));
        assert!(rendered.contains("tenants=12/cap=4"));
        assert!(rendered.contains("B/tenant"));
        assert!(rendered.contains("restore µs"));
        assert!(rendered.contains("wal segs"));
    }
}
