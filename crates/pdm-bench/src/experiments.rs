//! Shared definitions of the paper's experiments as runner grids, plus the
//! human-readable renderers for their aggregates.
//!
//! Every `bench` subcommand (and every legacy per-figure binary, which is now
//! a thin shim over [`crate::cli`]) resolves here to a list of
//! [`Experiment`]s: named cell grids with a rendering style and a footer
//! note quoting the paper's reference numbers.  The configurations reproduce
//! the original nine binaries exactly at repetition 0 — same seeds, same
//! scales — so the historical outputs remain comparable.

use crate::avazu_pipeline::FeatureCase;
use crate::cli::Command;
use crate::grid::{CellSpec, Checkpoint, JobSpec, SyntheticMechanism};
use crate::linear_market::{LinearMarketConfig, Version};
use crate::report::ExperimentReport;
use crate::runner::AggStat;
use crate::{table, Scale};

/// How an experiment's aggregate table is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderKind {
    /// Cumulative regret at each checkpoint (Fig. 4).
    RegretCheckpoints,
    /// Regret ratio at each checkpoint (Fig. 5).
    RatioCheckpoints,
    /// Per-round mean (std) statistics (Table I).
    TableOne,
    /// Final cumulative regret and ratio per cell (regret scaling).
    FinalRegret,
    /// Latency and memory per application (Section V-D).
    OverheadApps,
    /// Ellipsoid vs exact polytope (Section V-D ablation).
    OverheadAblation,
    /// Correct vs misbehaving mechanism per horizon (Lemma 8).
    Lemma8,
}

/// A named grid of cells with a rendering style and a footer note.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Report name, e.g. `fig4/n=20`.
    pub name: String,
    /// Table style for the human-readable output.
    pub kind: RenderKind,
    /// Footer printed after the table (paper reference points); empty for
    /// intermediate experiments of a group.
    pub note: &'static str,
    /// The grid cells.
    pub cells: Vec<CellSpec>,
}

/// Resolves a subcommand to its experiment grids at the given scale.
///
/// [`Command::Fig1`] returns no grids — its figure is closed-form and
/// rendered by [`render_fig1`].
#[must_use]
pub fn experiments_for(command: Command, scale: Scale) -> Vec<Experiment> {
    match command {
        Command::Fig1 => Vec::new(),
        Command::Fig4 => fig4(scale),
        Command::Fig5a => vec![fig5a(scale)],
        Command::Fig5b => vec![fig5b(scale)],
        Command::Fig5c => fig5c(scale),
        Command::Table1 => vec![table1(scale)],
        Command::RegretScaling => regret_scaling(scale),
        Command::Overhead => overhead(scale),
        Command::Lemma8 => vec![lemma8(scale)],
        // The serve, auction, drift, longhaul, and privacy workloads drive
        // the sharded service engine through their own closed loops
        // (crate::serve / crate::auction / crate::drift / crate::longhaul /
        // crate::privacy), not the simulation job runner.
        Command::Serve
        | Command::Auction
        | Command::Drift
        | Command::Longhaul
        | Command::Privacy => Vec::new(),
        Command::All => {
            let mut all = fig4(scale);
            all.push(fig5a(scale));
            all.push(fig5b(scale));
            all.extend(fig5c(scale));
            all.push(table1(scale));
            all.extend(regret_scaling(scale));
            all.extend(overhead(scale));
            all.push(lemma8(scale));
            all
        }
    }
}

/// The Fig.-4 checkpoint ladder of the original binary.
fn checkpoint_list(rounds: usize) -> Vec<Checkpoint> {
    let candidates = [rounds / 100, rounds / 10, rounds / 4, rounds / 2, rounds];
    let mut list: Vec<usize> = candidates.iter().copied().filter(|&c| c >= 1).collect();
    list.dedup();
    list.into_iter().map(Checkpoint::Round).collect()
}

fn fig4_config(scale: Scale, dim: usize) -> LinearMarketConfig {
    let rounds = match scale {
        Scale::Quick => LinearMarketConfig::paper_horizon(dim).min(5_000),
        Scale::Full => LinearMarketConfig::paper_horizon(dim),
    };
    LinearMarketConfig {
        dim,
        rounds,
        num_owners: scale.pick(200, 1_000),
        delta: 0.01,
        seed: 42,
    }
}

fn fig4(scale: Scale) -> Vec<Experiment> {
    let dims: Vec<usize> = scale.pick(vec![1, 20, 40], vec![1, 20, 40, 60, 80, 100]);
    let last = *dims.last().expect("fig4 has dimensions");
    dims.iter()
        .map(|&dim| {
            let config = fig4_config(scale, dim);
            let checkpoints = checkpoint_list(config.rounds);
            Experiment {
                name: format!("fig4/n={dim}"),
                kind: RenderKind::RegretCheckpoints,
                note: if dim == last {
                    "Expected shape: regret grows with n; the reserve-price versions sit below \
                     their no-reserve counterparts; the uncertainty buffer adds regret at large t."
                } else {
                    ""
                },
                cells: Version::ALL
                    .iter()
                    .map(|&version| {
                        CellSpec::new(version.label(), JobSpec::LinearMarket { config, version })
                            .with_checkpoints(checkpoints.clone())
                    })
                    .collect(),
            }
        })
        .collect()
}

fn fig5a(scale: Scale) -> Experiment {
    let config = LinearMarketConfig {
        dim: scale.pick(40, 100),
        rounds: scale.pick(20_000, 100_000),
        num_owners: scale.pick(300, 1_000),
        delta: 0.01,
        seed: 42,
    };
    let checkpoints: Vec<Checkpoint> = [10, 100, 1_000, config.rounds / 10, config.rounds]
        .into_iter()
        .map(Checkpoint::Round)
        .collect();
    let mut cells: Vec<CellSpec> = Version::ALL
        .iter()
        .map(|&version| {
            CellSpec::new(version.label(), JobSpec::LinearMarket { config, version })
                .with_checkpoints(checkpoints.clone())
        })
        .collect();
    cells.push(
        CellSpec::new(
            "risk-averse baseline (post reserve)",
            JobSpec::LinearBaseline { config },
        )
        .with_checkpoints(checkpoints),
    );
    Experiment {
        name: "fig5a".to_owned(),
        kind: RenderKind::RatioCheckpoints,
        note: "Paper reference points at T = 1e5, n = 100: pure 8.48%, with uncertainty 11.19%, \
               with reserve 7.77%, with reserve and uncertainty 9.87%, risk-averse baseline \
               18.16%. The reserve versions should show markedly lower ratios at small t \
               (cold-start mitigation).",
        cells,
    }
}

fn fig5b(scale: Scale) -> Experiment {
    let listings = scale.pick(8_000, 74_111);
    let checkpoints = vec![
        Checkpoint::Round(100),
        Checkpoint::Round(1_000),
        Checkpoint::Fraction(0.25),
        Checkpoint::Fraction(1.0),
    ];
    let airbnb = |log_ratio: Option<f64>, baseline: bool| JobSpec::Airbnb {
        listings,
        pipeline_seed: 42,
        log_ratio,
        baseline,
        sim_seed: 1,
    };
    let mut cells =
        vec![CellSpec::new("pure version", airbnb(None, false))
            .with_checkpoints(checkpoints.clone())];
    for ratio in [0.4, 0.6, 0.8] {
        cells.push(
            CellSpec::new(
                format!("with reserve, ln q/ln v = {ratio}"),
                airbnb(Some(ratio), false),
            )
            .with_checkpoints(checkpoints.clone()),
        );
        cells.push(
            CellSpec::new(
                format!("risk-averse baseline, ln q/ln v = {ratio}"),
                airbnb(Some(ratio), true),
            )
            .with_checkpoints(checkpoints.clone()),
        );
    }
    Experiment {
        name: "fig5b".to_owned(),
        kind: RenderKind::RatioCheckpoints,
        note: "Paper reference points at T = 74,111: pure 4.57%, reserve ratios 0.4/0.6/0.8 give \
               4.01%/3.83%/3.79%, the risk-averse baseline 23.40%/17.00%/9.33%. The closer the \
               reserve is to the value, the stronger the cold-start mitigation.",
        cells,
    }
}

fn fig5c(scale: Scale) -> Vec<Experiment> {
    let dims: Vec<usize> = scale.pick(vec![128], vec![128, 1024]);
    let train_size = scale.pick(40_000, 200_000);
    let pricing_rounds = scale.pick(8_000, 100_000);
    let checkpoints: Vec<Checkpoint> = [100, 1_000, pricing_rounds / 4, pricing_rounds]
        .into_iter()
        .map(Checkpoint::Round)
        .collect();
    let last = *dims.last().expect("fig5c has dimensions");
    dims.iter()
        .map(|&dim| Experiment {
            name: format!("fig5c/n={dim}"),
            kind: RenderKind::RatioCheckpoints,
            note: if dim == last {
                "Paper reference points at T = 1e5: sparse/dense regret ratios of 2.02%/0.41% at \
                 n = 128 and 8.04%/0.89% at n = 1024. The sparse case converges more slowly \
                 (early rounds are spent eliminating zero weights)."
            } else {
                ""
            },
            cells: [FeatureCase::Sparse, FeatureCase::Dense]
                .iter()
                .map(|&case| {
                    // The dense case prices on the ~20 significantly
                    // non-zero weights, not the full hashing dimension — the
                    // label must not claim d = n for it.
                    let label = match case {
                        FeatureCase::Sparse => format!("sparse case (d = {dim})"),
                        FeatureCase::Dense => "dense case (d = active weights)".to_owned(),
                    };
                    CellSpec::new(
                        label,
                        JobSpec::Avazu {
                            num_impressions: train_size + pricing_rounds,
                            dim,
                            pipeline_seed: 42,
                            case,
                            pricing_rounds,
                            sim_seed: 1,
                        },
                    )
                    .with_checkpoints(checkpoints.clone())
                })
                .collect(),
        })
        .collect()
}

fn table1(scale: Scale) -> Experiment {
    let dims: Vec<usize> = scale.pick(vec![1, 20, 40], vec![1, 20, 40, 60, 80, 100]);
    Experiment {
        name: "table1".to_owned(),
        kind: RenderKind::TableOne,
        note: "Entries are mean (population standard deviation), as in the paper's Table I. \
               Paper reference (their MovieLens compensations): e.g. n = 20: value 3.874 \
               (1.278), reserve 3.388 (0.776), posted 3.685 (1.631), regret 0.166 (0.824).",
        cells: dims
            .into_iter()
            .map(|dim| {
                let config = fig4_config(scale, dim);
                CellSpec::new(
                    format!("n={dim}"),
                    JobSpec::LinearMarket {
                        config,
                        version: Version::WithReserve,
                    },
                )
            })
            .collect(),
    }
}

fn regret_scaling(scale: Scale) -> Vec<Experiment> {
    let horizons: Vec<usize> = scale.pick(
        vec![250, 500, 1_000, 2_000],
        vec![1_000, 2_000, 4_000, 8_000, 16_000],
    );
    let one_dim = Experiment {
        name: "regret-scaling/one-dim".to_owned(),
        kind: RenderKind::FinalRegret,
        note: "Theorem 3: O(log T) regret in one dimension — doubling T should add roughly a \
               constant amount of regret.",
        cells: horizons
            .into_iter()
            .map(|t| {
                CellSpec::new(
                    format!("T={t}"),
                    JobSpec::Synthetic {
                        dim: 1,
                        rounds: t,
                        env_seed: 7,
                        run_seed: 8,
                        reserve: Some(false),
                        epsilon: None,
                        mechanism: SyntheticMechanism::OneDim,
                    },
                )
            })
            .collect(),
    };

    let rounds = scale.pick(3_000, 20_000);
    let dims: Vec<usize> = scale.pick(vec![5, 10, 20, 40], vec![10, 20, 40, 80]);
    let dimension = Experiment {
        name: "regret-scaling/dimension".to_owned(),
        kind: RenderKind::FinalRegret,
        note: "Theorem 1: at fixed T the regret grows roughly like n² log T in the feature \
               dimension.",
        cells: dims
            .into_iter()
            .map(|dim| {
                CellSpec::new(
                    format!("n={dim}"),
                    JobSpec::LinearMarket {
                        config: LinearMarketConfig {
                            dim,
                            rounds,
                            num_owners: scale.pick(200, 600),
                            delta: 0.0,
                            seed: 11,
                        },
                        version: Version::WithReserve,
                    },
                )
            })
            .collect(),
    };

    let dim = 10;
    let ablation_rounds = scale.pick(4_000, 20_000);
    let paper_epsilon = (dim * dim) as f64 / ablation_rounds as f64;
    let epsilon = Experiment {
        name: "regret-scaling/epsilon".to_owned(),
        kind: RenderKind::FinalRegret,
        note: "ε ablation at fixed n and T: very small ε over-explores, very large ε stops \
               learning too early; the paper's schedule ε = n²/T sits near the minimum.",
        cells: [0.01, 0.1, 1.0, 10.0, 100.0]
            .into_iter()
            .map(|m| {
                CellSpec::new(
                    format!("{m} × n²/T"),
                    JobSpec::Synthetic {
                        dim,
                        rounds: ablation_rounds,
                        env_seed: 13,
                        run_seed: 14,
                        reserve: Some(true),
                        epsilon: Some(paper_epsilon * m),
                        mechanism: SyntheticMechanism::Ellipsoid,
                    },
                )
            })
            .collect(),
    };

    vec![one_dim, dimension, epsilon]
}

fn overhead(scale: Scale) -> Vec<Experiment> {
    let linear_dim = scale.pick(40, 100);
    let avazu_dim = scale.pick(128, 1024);
    let applications = Experiment {
        name: "overhead/applications".to_owned(),
        kind: RenderKind::OverheadApps,
        note: "Paper reference at full scale: noisy linear query (n = 100) 0.115 ms, \
               accommodation rental (n = 55) 0.019 ms, impression pricing (n = 1024) 3.509 ms \
               sparse / 0.024 ms dense.",
        cells: vec![
            CellSpec::new(
                format!("noisy linear query (linear, n = {linear_dim})"),
                JobSpec::LinearMarket {
                    config: LinearMarketConfig {
                        dim: linear_dim,
                        rounds: scale.pick(3_000, 20_000),
                        num_owners: scale.pick(200, 1_000),
                        delta: 0.0,
                        seed: 42,
                    },
                    version: Version::WithReserve,
                },
            ),
            CellSpec::new(
                "accommodation rental (log-linear)",
                JobSpec::Airbnb {
                    listings: scale.pick(4_000, 20_000),
                    pipeline_seed: 42,
                    log_ratio: Some(0.6),
                    baseline: false,
                    sim_seed: 1,
                },
            ),
            CellSpec::new(
                format!("impression pricing (logistic, sparse, n = {avazu_dim})"),
                JobSpec::Avazu {
                    num_impressions: scale.pick(20_000, 120_000),
                    dim: avazu_dim,
                    pipeline_seed: 42,
                    case: FeatureCase::Sparse,
                    pricing_rounds: scale.pick(2_000, 20_000),
                    sim_seed: 1,
                },
            ),
            CellSpec::new(
                // The dense treatment keeps only the ~20 significantly
                // non-zero weights of the n-dimensional hash, so its
                // effective dimension is far below `avazu_dim`.
                format!("impression pricing (logistic, dense subset of n = {avazu_dim})"),
                JobSpec::Avazu {
                    num_impressions: scale.pick(20_000, 120_000),
                    dim: avazu_dim,
                    pipeline_seed: 42,
                    case: FeatureCase::Dense,
                    pricing_rounds: scale.pick(2_000, 20_000),
                    sim_seed: 1,
                },
            ),
        ],
    };
    let rounds = scale.pick(150, 400);
    let synthetic = |mechanism| JobSpec::Synthetic {
        dim: 10,
        rounds,
        env_seed: 3,
        run_seed: 4,
        reserve: None,
        epsilon: None,
        mechanism,
    };
    let ablation = Experiment {
        name: "overhead/polytope-ablation".to_owned(),
        kind: RenderKind::OverheadAblation,
        note: "The polytope's per-round cost grows with the number of accumulated constraints, \
               while the ellipsoid stays O(n²) — the gap widens with the horizon.",
        cells: vec![
            CellSpec::new(
                "ellipsoid (this paper)",
                synthetic(SyntheticMechanism::Ellipsoid),
            ),
            CellSpec::new(
                "exact polytope (two LPs per round)",
                synthetic(SyntheticMechanism::ExactPolytope),
            ),
        ],
    };
    vec![applications, ablation]
}

fn lemma8(scale: Scale) -> Experiment {
    let horizons: Vec<usize> = scale.pick(
        vec![200, 400, 800, 1_600],
        vec![500, 1_000, 2_000, 4_000, 8_000, 16_000],
    );
    let mut cells = Vec::new();
    for &horizon in &horizons {
        cells.push(CellSpec::new(
            format!("T={horizon} correct"),
            JobSpec::Lemma8 {
                horizon,
                conservative_cuts: false,
            },
        ));
        cells.push(CellSpec::new(
            format!("T={horizon} cuts-on-conservative"),
            JobSpec::Lemma8 {
                horizon,
                conservative_cuts: true,
            },
        ));
    }
    Experiment {
        name: "lemma8".to_owned(),
        kind: RenderKind::Lemma8,
        note: "Expected shape: the misbehaving variant pays a large constant-factor penalty at \
               every horizon (Ω(T) in exact arithmetic; in f64 the blow-up saturates at the \
               numerical floor — see EXPERIMENTS.md, experiment E8).",
        cells,
    }
}

/// Formats an aggregate value, appending `± ci95` when more than one
/// repetition contributed.
fn fmt_stat(stat: &AggStat, decimals: usize, reps: u64) -> String {
    if reps > 1 {
        format!(
            "{} ± {}",
            table::fmt(stat.mean, decimals),
            table::fmt(stat.ci95_half, decimals)
        )
    } else {
        table::fmt(stat.mean, decimals)
    }
}

/// Formats a ratio aggregate as a percentage, with `± ci95` when replicated.
fn pct_stat(stat: &AggStat, reps: u64) -> String {
    if reps > 1 {
        format!("{} ± {}", table::pct(stat.mean), table::pct(stat.ci95_half))
    } else {
        table::pct(stat.mean)
    }
}

/// Renders one experiment's aggregates in its table style.
#[must_use]
pub fn render_experiment(kind: RenderKind, report: &ExperimentReport) -> String {
    let mut out = format!("=== {} ===\n", report.name);
    out.push_str(&match kind {
        RenderKind::RegretCheckpoints => render_checkpoints(report, false),
        RenderKind::RatioCheckpoints => render_checkpoints(report, true),
        RenderKind::TableOne => render_table_one(report),
        RenderKind::FinalRegret => render_final_regret(report),
        RenderKind::OverheadApps => render_overhead_apps(report),
        RenderKind::OverheadAblation => render_overhead_ablation(report),
        RenderKind::Lemma8 => render_lemma8(report),
    });
    out
}

fn render_checkpoints(report: &ExperimentReport, as_ratio: bool) -> String {
    let checkpoint_rounds: Vec<usize> = report
        .cells
        .first()
        .map(|cell| cell.checkpoints.iter().map(|cp| cp.round).collect())
        .unwrap_or_default();
    let header_labels: Vec<String> = checkpoint_rounds.iter().map(|c| format!("t={c}")).collect();
    let mut headers = vec![if as_ratio { "mechanism" } else { "version" }];
    headers.extend(header_labels.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|cell| {
            let mut row = vec![cell.label.clone()];
            for cp in &cell.checkpoints {
                row.push(if as_ratio {
                    pct_stat(&cp.regret_ratio, cell.reps)
                } else {
                    fmt_stat(&cp.cumulative_regret, 1, cell.reps)
                });
            }
            row
        })
        .collect();
    table::render(&headers, &rows)
}

fn render_table_one(report: &ExperimentReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|cell| {
            let pair = |m: f64, s: f64| format!("{} ({})", table::fmt(m, 3), table::fmt(s, 3));
            vec![
                cell.label.clone(),
                cell.rounds.to_string(),
                pair(
                    cell.market_value_per_round.mean,
                    cell.market_value_per_round.std,
                ),
                pair(
                    cell.reserve_price_per_round.mean,
                    cell.reserve_price_per_round.std,
                ),
                pair(
                    cell.posted_price_per_round.mean,
                    cell.posted_price_per_round.std,
                ),
                pair(cell.regret_per_round.mean, cell.regret_per_round.std),
                pct_stat(&cell.regret_ratio, cell.reps),
            ]
        })
        .collect();
    table::render(
        &[
            "n",
            "T",
            "market value",
            "reserve price",
            "posted price",
            "regret",
            "regret ratio",
        ],
        &rows,
    )
}

fn render_final_regret(report: &ExperimentReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|cell| {
            vec![
                cell.label.clone(),
                fmt_stat(&cell.cumulative_regret, 3, cell.reps),
                pct_stat(&cell.regret_ratio, cell.reps),
            ]
        })
        .collect();
    table::render(&["cell", "cumulative regret", "regret ratio"], &rows)
}

fn render_overhead_apps(report: &ExperimentReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|cell| {
            vec![
                cell.label.clone(),
                format!("{:.3} ms", cell.perf.latency_mean_micros / 1_000.0),
                format!("{:.3} ms", cell.perf.latency_p50_micros / 1_000.0),
                format!("{:.3} ms", cell.perf.latency_p99_micros / 1_000.0),
                format!("{:.3} ms", cell.perf.latency_max_micros / 1_000.0),
                format!("{:.0}", cell.perf.rounds_per_sec),
                format!(
                    "{:.2} MB",
                    cell.perf.memory_bytes as f64 / (1024.0 * 1024.0)
                ),
            ]
        })
        .collect();
    table::render(
        &[
            "application",
            "mean/round",
            "p50/round",
            "p99/round",
            "max/round",
            "rounds/sec",
            "knowledge-set memory",
        ],
        &rows,
    )
}

fn render_overhead_ablation(report: &ExperimentReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|cell| {
            vec![
                cell.label.clone(),
                format!("{:.3} µs", cell.perf.latency_mean_micros),
                pct_stat(&cell.regret_ratio, cell.reps),
            ]
        })
        .collect();
    table::render(
        &["knowledge set", "mean latency/round", "regret ratio"],
        &rows,
    )
}

fn render_lemma8(report: &ExperimentReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cells
        .chunks(2)
        .filter(|pair| pair.len() == 2)
        .map(|pair| {
            let correct = pair[0].cumulative_regret.mean;
            let misbehaving = pair[1].cumulative_regret.mean;
            vec![
                pair[0].rounds.to_string(),
                table::fmt(correct, 2),
                table::fmt(misbehaving, 2),
                table::fmt(misbehaving / correct.max(1e-9), 1),
            ]
        })
        .collect();
    table::render(
        &[
            "T",
            "correct mechanism",
            "cuts on conservative",
            "blow-up factor",
        ],
        &rows,
    )
}

/// Renders Fig. 1 (closed-form, no simulation): the asymmetric single-round
/// regret as a function of the posted price.
#[must_use]
pub fn render_fig1() -> String {
    use pdm_pricing::regret::single_round_regret;
    let market_value = 4.0;
    let reserve_price = 1.0;
    let mut out = format!(
        "Fig. 1 — single-round regret (market value = {market_value}, reserve = \
         {reserve_price})\n\n"
    );
    let mut rows = Vec::new();
    let mut posted = 0.0;
    while posted <= 6.0 + 1e-9 {
        let regret = single_round_regret(posted, market_value, reserve_price);
        let note = if posted < reserve_price {
            "below reserve (never posted)"
        } else if posted <= market_value {
            "sale: regret = value − price"
        } else {
            "no sale: regret = full value"
        };
        rows.push(vec![
            table::fmt(posted, 2),
            table::fmt(regret, 2),
            note.to_owned(),
        ]);
        posted += 0.5;
    }
    out.push_str(&table::render(&["posted price", "regret", "regime"], &rows));
    out.push_str(
        "The cliff at the market value (4) is the asymmetry that makes a slight overestimate \
         far more costly than a slight underestimate.\n",
    );
    let regret = single_round_regret(5.0, 4.0, 4.5);
    out.push_str(&format!(
        "\nWith reserve 4.5 > value 4.0 the round is unsellable and the regret is {regret} for \
         any posted price.\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_subcommand_resolves_to_a_grid() {
        for command in Command::ALL {
            let experiments = experiments_for(command, Scale::Quick);
            // Fig. 1 is closed-form (no simulation) and the serve, auction,
            // drift, longhaul, and privacy workloads run through their own
            // closed loops, not the simulation job runner.
            if matches!(
                command,
                Command::Fig1
                    | Command::Serve
                    | Command::Auction
                    | Command::Drift
                    | Command::Longhaul
                    | Command::Privacy
            ) {
                assert!(experiments.is_empty());
            } else {
                assert!(!experiments.is_empty(), "{command:?} has no experiments");
                for exp in &experiments {
                    assert!(!exp.cells.is_empty(), "{} has no cells", exp.name);
                }
            }
        }
    }

    #[test]
    fn all_concatenates_every_simulation_experiment() {
        let all = experiments_for(Command::All, Scale::Quick);
        let names: Vec<&str> = all.iter().map(|e| e.name.as_str()).collect();
        for expected in [
            "fig4/n=1",
            "fig5a",
            "fig5b",
            "fig5c/n=128",
            "table1",
            "regret-scaling/one-dim",
            "regret-scaling/dimension",
            "regret-scaling/epsilon",
            "overhead/applications",
            "overhead/polytope-ablation",
            "lemma8",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        // Quick-scale `all` is a substantial grid (the runner's raison d'être).
        let cell_count: usize = all.iter().map(|e| e.cells.len()).sum();
        assert!(cell_count >= 40, "only {cell_count} cells");
    }

    #[test]
    fn full_scale_matches_the_papers_grid() {
        let fig4_full = experiments_for(Command::Fig4, Scale::Full);
        assert_eq!(fig4_full.len(), 6, "Fig. 4 spans n ∈ {{1,...,100}}");
        let fig5c_full = experiments_for(Command::Fig5c, Scale::Full);
        assert_eq!(fig5c_full.len(), 2, "Fig. 5(c) runs n = 128 and 1024");
    }

    #[test]
    fn fig1_renders_the_closed_form_table() {
        let out = render_fig1();
        assert!(out.contains("single-round regret"));
        assert!(out.contains("below reserve"));
        assert!(out.contains("no sale"));
    }
}
