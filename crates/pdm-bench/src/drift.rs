//! The `bench drift` workload: drifting posted-price markets driven through
//! the sharded [`MarketService`] engine, stress-testing the drift-aware
//! mechanism policies against the paper's stationary mechanism.
//!
//! The grid crosses **drift kind × magnitude × drift policy**.  Every cell
//! registers `tenants` posted-price tenants under one [`DriftPolicy`]
//! (static / restart / discounted), each facing its own
//! [`DriftingLinearEnvironment`] — piecewise-stationary jumps, a slow
//! rotation of `θ*`, or a one-shot adversarial reversal.  Crucially, the
//! **environment seeds depend only on the drift kind and magnitude**, never
//! on the policy, so the three policy columns of a row price the *exact
//! same* moving market and their regret columns are directly comparable.
//!
//! Every repetition is verified against a serial per-tenant replay bit for
//! bit (posted prices, detector firings, restarts), exactly like the serve
//! and auction workloads; deterministic aggregates are folded per tenant in
//! tenant order.  Beyond the cumulative ledgers, each cell reports
//! **post-shift regret** — regret accumulated from the first discrete shift
//! onwards — which is the figure the BENCH v4 `validate()` gate reads: at
//! `--full` scale the restart and discounted policies must both beat the
//! static mechanism's post-shift regret in every piecewise-stationary cell.
//!
//! [`MarketService`]: pdm_service::MarketService

use crate::grid::derive_seed;
use crate::runner::AggStat;
use crate::table;
use crate::Scale;
use pdm_pricing::prelude::{
    DriftKind, DriftPolicy, DriftSchedule, DriftingLinearEnvironment, Environment, NoiseModel,
    StepOutcome,
};
use pdm_service::{
    MarketService, MetricRegistry, OutcomeReport, QueryRequest, ServiceConfig, ShardMetrics,
    TenantConfig, TenantId, TenantState,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Base seed of the drift grid; environment streams derive from the *row*
/// (kind × magnitude), not the cell, so policies face identical markets.
const DRIFT_SEED_BASE: u64 = 0xD21F;

/// Market-value noise of the drifting environments.
const NOISE_STD: f64 = 0.01;

/// The δ uncertainty buffer drift-grid tenants run with: it absorbs the
/// environment noise (σ = 0.01 ≪ δ) so surprisal is drift evidence, not
/// noise, and it keeps cuts sound under the noisy values.
const DRIFT_SESSION_DELTA: f64 = 0.02;

/// Per-round semi-axis inflation of the discounted policy in the grid.
///
/// Tuned against the full-scale grid: isotropic inflation must be re-cut
/// across every dimension, so the steady-state exploratory fraction is
/// roughly `4n²·ln(inflation)`; 1.002 keeps that near 7% (cheap enough to
/// beat the static mechanism even under mild mag-0.5 jumps) while still
/// re-opening a stale set within ~a hundred rounds of a shift.
const DISCOUNT_INFLATION: f64 = 1.002;

/// One cell of the drift grid.
#[derive(Debug, Clone)]
pub struct DriftCellSpec {
    /// Row label, e.g. `kind=piecewise/mag=1/policy=restart`.
    pub label: String,
    /// The drift kind every tenant's environment follows.
    pub kind: DriftKind,
    /// The shift magnitude knob of the row (blend weight / rate scale).
    pub magnitude: f64,
    /// The drift policy every tenant of the cell runs.
    pub policy: DriftPolicy,
    /// Registered posted-price tenants (independent drifting markets).
    pub tenants: usize,
    /// Feature dimension of the queries.
    pub dim: usize,
    /// Shard count of the service.
    pub shards: usize,
    /// Closed-loop rounds per tenant.
    pub waves: usize,
    /// Base seed of the row's environment streams (shared across the
    /// row's policy cells).
    pub env_seed: u64,
}

/// Wall-clock figures of one drift cell (excluded from the determinism
/// fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftPerf {
    /// End-to-end seconds for the cell (generation + service + verify).
    pub wall_clock_secs: f64,
    /// Quotes served per second of drain (service) time.
    pub quotes_per_sec: f64,
    /// Mean per-request service latency in µs, over *every* request of the
    /// cell (the all-time streaming stats, not the bounded percentile
    /// window).
    pub latency_mean_micros: f64,
    /// Median per-request service latency in µs.
    pub latency_p50_micros: f64,
    /// p99 per-request service latency in µs.
    pub latency_p99_micros: f64,
}

/// Everything the BENCH v4 report records about one drift cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftCellReport {
    /// Row label (from the cell spec).
    pub label: String,
    /// Drift-kind name (`piecewise` / `rotation` / `adversarial`).
    pub kind: String,
    /// The row's shift magnitude.
    pub magnitude: f64,
    /// Drift-policy name (`static` / `restart` / `discounted`).
    pub policy: String,
    /// Registered tenants.
    pub tenants: u64,
    /// Service shard count.
    pub shards: u64,
    /// Rounds per tenant per repetition.
    pub waves: u64,
    /// Repetitions aggregated.
    pub reps: u64,
    /// Worker threads each drain ran on.
    pub workers: u64,
    /// Rounds served and observed, summed over repetitions.
    pub rounds: u64,
    /// Accepted quotes, summed over repetitions.
    pub sales: u64,
    /// Drift-detector firings, summed over repetitions.
    pub drift_fires: u64,
    /// Knowledge-set restarts, summed over repetitions.
    pub drift_restarts: u64,
    /// Cumulative revenue per repetition.
    pub revenue: AggStat,
    /// Cumulative regret per repetition.
    pub regret: AggStat,
    /// Regret accumulated from the first discrete shift onwards, per
    /// repetition (equals `regret` for the continuous rotation kind).
    pub post_shift_regret: AggStat,
    /// Acceptance rate per repetition.
    pub accept_rate: AggStat,
    /// Wall-clock figures.
    pub perf: DriftPerf,
}

/// The drift policies of the grid, in column order.
#[must_use]
pub fn grid_policies() -> [DriftPolicy; 3] {
    [
        DriftPolicy::Static,
        DriftPolicy::restart_default(),
        DriftPolicy::Discounted {
            inflation: DISCOUNT_INFLATION,
        },
    ]
}

/// The drift kinds of the grid for a given horizon and magnitude: one
/// piecewise-stationary schedule (three phases), one slow rotation, one
/// adversarial reversal at half time.
#[must_use]
pub fn grid_kinds(waves: usize, magnitude: f64) -> [DriftKind; 3] {
    [
        DriftKind::PiecewiseJumps {
            period: (waves as u64 / 3).max(1),
            magnitude,
        },
        DriftKind::Rotation {
            rate: 0.02 * magnitude,
        },
        DriftKind::AdversarialShift {
            at_round: (waves as u64 / 2).max(1),
            magnitude,
        },
    ]
}

/// The drift grid: kind × magnitude × policy at the given scale.
#[must_use]
pub fn drift_grid(scale: Scale) -> Vec<DriftCellSpec> {
    let tenants = scale.pick(4, 8);
    let dim = scale.pick(3, 3);
    let shards = scale.pick(4, 8);
    // Phases must be long enough for the mechanism to converge into the
    // conservative regime before a jump — that is where drift hurts the
    // static mechanism and where the surprisal signal lives.  Quick runs
    // three 60-round phases; full runs three 300-round phases.
    let waves = scale.pick(180, 900);
    let magnitudes = [0.5f64, 1.0];
    let mut cells = Vec::new();
    let mut row = 0u64;
    for &magnitude in &magnitudes {
        for kind in grid_kinds(waves, magnitude) {
            // One seed per (kind, magnitude) row: every policy column of
            // the row faces the exact same drifting markets.
            let env_seed = DRIFT_SEED_BASE + row;
            row += 1;
            for policy in grid_policies() {
                cells.push(DriftCellSpec {
                    label: format!(
                        "kind={}/mag={magnitude:.1}/policy={}",
                        kind.name(),
                        policy.name()
                    ),
                    kind,
                    magnitude,
                    policy,
                    tenants,
                    dim,
                    shards,
                    waves,
                    env_seed,
                });
            }
        }
    }
    cells
}

/// One recorded posted-price round, replayed serially during verification.
struct RecordedRound {
    features: pdm_linalg::Vector,
    reserve: f64,
    value: f64,
    accepted: bool,
    posted_bits: u64,
}

/// The per-repetition outcome handed to the aggregator.
struct RepOutcome {
    revenue: f64,
    regret: f64,
    post_shift_regret: f64,
    accept_rate: f64,
    rounds: u64,
    sales: u64,
    fires: u64,
    restarts: u64,
    /// The service-wide metrics fold, carrying the request counters *and*
    /// the all-time latency streaming stats (the bounded percentile window
    /// alone would drop the mean).
    metrics: ShardMetrics,
    latency_pool: Vec<f64>,
    drain_time: Duration,
    /// The service's final `pdm-obs` scrape, folded into the run registry.
    scrape: MetricRegistry,
}

/// The tenant config of one cell: the paper's posted-price defaults with
/// the drift-grid δ buffer and the cell's drift policy.
fn tenant_config(spec: &DriftCellSpec) -> TenantConfig {
    let mut config = TenantConfig::standard(spec.dim, spec.waves).with_drift(spec.policy);
    config.pricing = config.pricing.with_uncertainty(DRIFT_SESSION_DELTA);
    config
}

/// Runs one repetition of one cell and verifies it against the serial
/// replay.  Returns the deterministic per-rep aggregates.
fn run_rep(spec: &DriftCellSpec, workers: usize, rep: u64) -> Result<RepOutcome, String> {
    // Environment streams derive from the row seed (kind × magnitude) and
    // the repetition — NOT the policy — so policy columns are comparable.
    let row_seed = derive_seed(spec.env_seed, rep);
    let config = tenant_config(spec);

    let mut service = MarketService::new(ServiceConfig {
        shards: spec.shards,
        queue_capacity: spec.tenants.max(4),
        ..ServiceConfig::default()
    })
    .map_err(|e| format!("{}: config: {e}", spec.label))?;
    let mut environments: Vec<DriftingLinearEnvironment> = Vec::with_capacity(spec.tenants);
    let mut streams: Vec<StdRng> = Vec::with_capacity(spec.tenants);
    for id in 0..spec.tenants as u64 {
        service
            .register_tenant(TenantId(id), config)
            .map_err(|e| format!("{}: register: {e}", spec.label))?;
        environments.push(DriftingLinearEnvironment::new(
            spec.dim,
            spec.waves,
            DriftSchedule {
                kind: spec.kind,
                seed: derive_seed(row_seed, id.wrapping_add(1)),
            },
            NoiseModel::Gaussian { std_dev: NOISE_STD },
        ));
        streams.push(StdRng::seed_from_u64(derive_seed(
            row_seed,
            id.wrapping_add(1_000),
        )));
    }

    let mut recorded: Vec<Vec<RecordedRound>> = (0..spec.tenants).map(|_| Vec::new()).collect();
    let mut pending: Vec<Option<(pdm_linalg::Vector, f64, f64)>> = vec![None; spec.tenants];
    let mut drain_time = Duration::ZERO;
    for _ in 0..spec.waves {
        for id in 0..spec.tenants {
            let round = environments[id]
                .next_round(&mut streams[id])
                .ok_or_else(|| format!("{}: environment exhausted early", spec.label))?;
            service
                .submit_quote(QueryRequest {
                    tenant: TenantId(id as u64),
                    features: round.features.clone(),
                    reserve_price: round.reserve_price,
                })
                .map_err(|e| format!("{}: submit: {e}", spec.label))?;
            pending[id] = Some((round.features, round.reserve_price, round.market_value));
        }
        let started = Instant::now();
        let responses = service.drain(workers);
        drain_time += started.elapsed();
        for response in &responses {
            let quote = response
                .quote()
                .ok_or_else(|| format!("{}: expected a quote response", spec.label))?;
            let slot = response.tenant.0 as usize;
            let (features, reserve, value) = pending[slot]
                .take()
                .ok_or_else(|| format!("{}: response without a pending quote", spec.label))?;
            let accepted = quote.posted_price <= value;
            recorded[slot].push(RecordedRound {
                features,
                reserve,
                value,
                accepted,
                posted_bits: quote.posted_price.to_bits(),
            });
            service
                .submit_outcome(OutcomeReport {
                    tenant: response.tenant,
                    accepted,
                    market_value: Some(value),
                })
                .map_err(|e| format!("{}: outcome: {e}", spec.label))?;
        }
        let started = Instant::now();
        service.drain(workers);
        drain_time += started.elapsed();
    }

    // Serial verification: replay every tenant's round stream through a
    // fresh single-threaded session under the same drift policy and require
    // bit-identical posted prices.  The replay also rebuilds the
    // deterministic ledgers — total and post-shift regret folded per tenant
    // in tenant order — which is what the report aggregates.
    let first_shift = spec.kind.first_shift_round() as usize;
    let mut revenue = 0.0;
    let mut regret = 0.0;
    let mut post_shift_regret = 0.0;
    let mut rounds = 0u64;
    let mut sales = 0u64;
    let mut fires = 0u64;
    let mut restarts = 0u64;
    for (id, tenant_rounds) in recorded.iter().enumerate() {
        let mut tenant = TenantState::new(TenantId(id as u64), config);
        for (index, round) in tenant_rounds.iter().enumerate() {
            let quote = tenant.session.step(&round.features, round.reserve);
            if quote.posted_price.to_bits() != round.posted_bits {
                return Err(format!(
                    "{}: tenant {id}: serial replay posted {} but the service posted {} — \
                     sharded and serial drift-aware pricing diverged",
                    spec.label,
                    quote.posted_price,
                    f64::from_bits(round.posted_bits),
                ));
            }
            let observed = tenant
                .session
                .observe(StepOutcome::with_value(round.accepted, round.value))
                .ok_or_else(|| format!("{}: replay lost an open round", spec.label))?;
            rounds += 1;
            if observed.accepted {
                sales += 1;
            }
            revenue += observed.revenue;
            let round_regret = observed.regret.unwrap_or(0.0);
            regret += round_regret;
            if index >= first_shift {
                post_shift_regret += round_regret;
            }
        }
        fires += tenant.session.mechanism().detector_fires();
        restarts += tenant.session.mechanism().restarts();
    }

    // The service's own (FIFO-ordered) drift counters must agree with the
    // serial replay — the detector is deterministic in the request stream.
    let metrics = service.aggregate_metrics();
    if metrics.drift_fires != fires || metrics.drift_restarts != restarts {
        return Err(format!(
            "{}: service drift counters ({} fires, {} restarts) disagree with the serial \
             replay ({fires} fires, {restarts} restarts)",
            spec.label, metrics.drift_fires, metrics.drift_restarts,
        ));
    }
    if metrics.sales != sales || metrics.observations != rounds {
        return Err(format!(
            "{}: service ledger ({} sales / {} rounds) disagrees with the serial replay \
             ({sales} sales / {rounds} rounds)",
            spec.label, metrics.sales, metrics.observations,
        ));
    }

    let latency_pool = service
        .shard_metrics()
        .iter()
        .flat_map(|shard| shard.latency_window().to_vec())
        .collect();
    Ok(RepOutcome {
        revenue,
        regret,
        post_shift_regret,
        accept_rate: if rounds == 0 {
            0.0
        } else {
            sales as f64 / rounds as f64
        },
        rounds,
        sales,
        fires,
        restarts,
        metrics,
        latency_pool,
        drain_time,
        scrape: service.scrape(),
    })
}

/// Runs one cell (all repetitions) and aggregates it into a report row,
/// folding every repetition's final service scrape into `obs`.
pub fn run_drift_cell_obs(
    spec: &DriftCellSpec,
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<DriftCellReport, String> {
    let started = Instant::now();
    let reps = reps.max(1);
    let mut revenue = Vec::with_capacity(reps as usize);
    let mut regret = Vec::with_capacity(reps as usize);
    let mut post_shift = Vec::with_capacity(reps as usize);
    let mut accept = Vec::with_capacity(reps as usize);
    let mut rounds = 0u64;
    let mut sales = 0u64;
    let mut fires = 0u64;
    let mut restarts = 0u64;
    let mut metrics = ShardMetrics::new();
    let mut latency_pool: Vec<f64> = Vec::new();
    let mut drain_time = Duration::ZERO;
    for rep in 0..reps {
        let mut outcome = run_rep(spec, workers, rep)?;
        revenue.push(outcome.revenue);
        regret.push(outcome.regret);
        post_shift.push(outcome.post_shift_regret);
        accept.push(outcome.accept_rate);
        rounds += outcome.rounds;
        sales += outcome.sales;
        fires += outcome.fires;
        restarts += outcome.restarts;
        metrics.merge(&outcome.metrics);
        latency_pool.append(&mut outcome.latency_pool);
        drain_time += outcome.drain_time;
        obs.merge(&outcome.scrape);
    }

    let drain_secs = drain_time.as_secs_f64();
    let quotes_per_sec = if drain_secs > 0.0 {
        metrics.quotes_served as f64 / drain_secs
    } else {
        0.0
    };
    let (p50, p99) = match pdm_linalg::quantiles(&latency_pool, &[0.50, 0.99]) {
        Ok(qs) => (qs[0], qs[1]),
        Err(_) => (f64::NAN, f64::NAN),
    };
    Ok(DriftCellReport {
        label: spec.label.clone(),
        kind: spec.kind.name().to_owned(),
        magnitude: spec.magnitude,
        policy: spec.policy.name().to_owned(),
        tenants: spec.tenants as u64,
        shards: spec.shards as u64,
        waves: spec.waves as u64,
        reps,
        workers: workers as u64,
        rounds,
        sales,
        drift_fires: fires,
        drift_restarts: restarts,
        revenue: AggStat::from_values(&revenue),
        regret: AggStat::from_values(&regret),
        post_shift_regret: AggStat::from_values(&post_shift),
        accept_rate: AggStat::from_values(&accept),
        perf: DriftPerf {
            wall_clock_secs: started.elapsed().as_secs_f64(),
            quotes_per_sec,
            latency_mean_micros: metrics.latency_stats().mean(),
            latency_p50_micros: p50,
            latency_p99_micros: p99,
        },
    })
}

/// [`run_drift_cell_obs`] with the scrape discarded, for callers that only
/// want the report row.
pub fn run_drift_cell(
    spec: &DriftCellSpec,
    workers: usize,
    reps: u64,
) -> Result<DriftCellReport, String> {
    run_drift_cell_obs(spec, workers, reps, &mut MetricRegistry::new())
}

/// Runs a set of drift cells (the whole grid, or a `--filter` subset),
/// folding every cell's scrape into `obs`.
pub fn run_drift_cells_obs(
    cells: &[DriftCellSpec],
    workers: usize,
    reps: u64,
    obs: &mut MetricRegistry,
) -> Result<Vec<DriftCellReport>, String> {
    cells
        .iter()
        .map(|spec| run_drift_cell_obs(spec, workers, reps, obs))
        .collect()
}

/// Runs a set of drift cells (the whole grid, or a `--filter` subset).
pub fn run_drift_cells(
    cells: &[DriftCellSpec],
    workers: usize,
    reps: u64,
) -> Result<Vec<DriftCellReport>, String> {
    run_drift_cells_obs(cells, workers, reps, &mut MetricRegistry::new())
}

/// Renders the drift cells as the console table `bench drift` prints.
#[must_use]
pub fn render_drift(cells: &[DriftCellReport]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.label.clone(),
                cell.rounds.to_string(),
                table::pct(cell.accept_rate.mean),
                cell.drift_fires.to_string(),
                cell.drift_restarts.to_string(),
                table::fmt(cell.revenue.mean, 2),
                table::fmt(cell.regret.mean, 2),
                table::fmt(cell.post_shift_regret.mean, 2),
                table::fmt(cell.perf.quotes_per_sec, 0),
                table::fmt(cell.perf.latency_p99_micros, 1),
            ]
        })
        .collect();
    table::render(
        &[
            "cell",
            "rounds",
            "accept",
            "fires",
            "restarts",
            "revenue",
            "regret",
            "post-shift",
            "quotes/s",
            "p99 µs",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell(kind: DriftKind, policy: DriftPolicy) -> DriftCellSpec {
        DriftCellSpec {
            label: format!("kind={}/mag=1.0/policy={}", kind.name(), policy.name()),
            kind,
            magnitude: 1.0,
            policy,
            tenants: 3,
            dim: 3,
            shards: 2,
            waves: 30,
            env_seed: 4242,
        }
    }

    fn piecewise(waves: usize) -> DriftKind {
        DriftKind::PiecewiseJumps {
            period: waves as u64 / 3,
            magnitude: 1.0,
        }
    }

    #[test]
    fn grid_crosses_kinds_magnitudes_and_policies() {
        let quick = drift_grid(Scale::Quick);
        assert_eq!(quick.len(), 2 * 3 * 3);
        let labels: Vec<&str> = quick.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"kind=piecewise/mag=0.5/policy=static"));
        assert!(labels.contains(&"kind=rotation/mag=1.0/policy=restart"));
        assert!(labels.contains(&"kind=adversarial/mag=1.0/policy=discounted"));
        // Every policy column of a row shares the row's environment seed.
        for row in quick.chunks(3) {
            assert!(row.iter().all(|c| c.env_seed == row[0].env_seed));
            assert!(row.iter().all(|c| c.kind == row[0].kind));
        }
        let full = drift_grid(Scale::Full);
        assert!(full[0].waves > quick[0].waves);
    }

    #[test]
    fn cell_runs_and_passes_its_own_serial_verification() {
        for policy in grid_policies() {
            let report = run_drift_cell(&tiny_cell(piecewise(30), policy), 2, 1).unwrap();
            assert_eq!(report.rounds, 3 * 30, "{policy:?}");
            assert!(report.sales > 0, "{policy:?}");
            assert!(report.revenue.mean > 0.0, "{policy:?}");
            assert!(
                report.regret.mean >= report.post_shift_regret.mean,
                "{policy:?}"
            );
            assert!(report.perf.quotes_per_sec > 0.0, "{policy:?}");
        }
    }

    #[test]
    fn worker_count_does_not_move_deterministic_aggregates() {
        for policy in grid_policies() {
            let spec = tiny_cell(piecewise(30), policy);
            let one = run_drift_cell(&spec, 1, 2).unwrap();
            let four = run_drift_cell(&spec, 4, 2).unwrap();
            assert_eq!(one.rounds, four.rounds, "{policy:?}");
            assert_eq!(one.sales, four.sales, "{policy:?}");
            assert_eq!(one.drift_fires, four.drift_fires, "{policy:?}");
            assert_eq!(one.drift_restarts, four.drift_restarts, "{policy:?}");
            assert_eq!(
                one.revenue.mean.to_bits(),
                four.revenue.mean.to_bits(),
                "{policy:?}"
            );
            assert_eq!(
                one.post_shift_regret.mean.to_bits(),
                four.post_shift_regret.mean.to_bits(),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn latency_mean_pools_the_all_time_stats_across_reps() {
        // Regression: the cell mean must come from the merged all-time
        // streaming stats, not be dropped (NaN) or read off the bounded
        // percentile window.
        let mut obs = MetricRegistry::new();
        let report = run_drift_cell_obs(
            &tiny_cell(piecewise(30), DriftPolicy::Static),
            2,
            2,
            &mut obs,
        )
        .unwrap();
        assert!(
            report.perf.latency_mean_micros.is_finite() && report.perf.latency_mean_micros > 0.0,
            "mean {} must be a real pooled figure",
            report.perf.latency_mean_micros
        );
        // The scrape folded both repetitions: the quote-span work histogram
        // counts every served request of the cell.
        let quotes = obs
            .counter_value("quotes_served_total")
            .expect("the scrape exports the served counter");
        assert_eq!(quotes as u64, report.rounds);
    }

    #[test]
    fn restart_cells_actually_fire_and_restart_under_full_magnitude_jumps() {
        // Phases must be long enough for the mechanism to converge into
        // the conservative regime before the jump — that is where the
        // surprisal signal (rejected "certain" sales) lives.
        let mut spec = tiny_cell(piecewise(180), DriftPolicy::restart_default());
        spec.waves = 180;
        let report = run_drift_cell(&spec, 2, 1).unwrap();
        assert!(
            report.drift_fires >= 1,
            "full-magnitude jumps must trigger the detector"
        );
        assert_eq!(report.drift_fires, report.drift_restarts);
        // Static cells never fire.
        let static_report =
            run_drift_cell(&tiny_cell(piecewise(30), DriftPolicy::Static), 2, 1).unwrap();
        assert_eq!(static_report.drift_fires, 0);
        assert_eq!(static_report.drift_restarts, 0);
    }

    #[test]
    fn render_lists_every_cell_with_post_shift_regret() {
        let report = run_drift_cell(&tiny_cell(piecewise(30), DriftPolicy::Static), 1, 1).unwrap();
        let rendered = render_drift(std::slice::from_ref(&report));
        assert!(rendered.contains("kind=piecewise/mag=1.0/policy=static"));
        assert!(rendered.contains("post-shift"));
        assert!(rendered.contains("restarts"));
    }
}
