//! The experiment grid: self-contained job descriptions the parallel runner
//! executes.
//!
//! A [`Job`] is one point of the evaluation grid — a workload specification
//! ([`JobSpec`]) addressed by experiment, cell, and repetition index.  Every
//! job carries its own RNG seeds, so running a grid with one worker or with
//! sixteen produces bit-identical results; repetitions re-derive their seeds
//! through a SplitMix64 mix ([`derive_seed`]) so rep 0 reproduces the single
//! runs of the original per-figure binaries exactly.
//!
//! The heavyweight dataset pipelines (the fitted accommodation-rental and
//! impression-pricing models) are memoised per `(size, dimension, seed)` key:
//! the pipeline is a *trained artifact*, identical for every cell that shares
//! the key, and rebuilding it per job would dominate the runtime of the
//! `fig5b`/`fig5c` grids.  The cache is keyed on everything that affects the
//! build, so memoisation never changes results.

use crate::airbnb_pipeline::{self, AirbnbPipeline};
use crate::avazu_pipeline::{self, AvazuPipeline, FeatureCase};
use crate::linear_market::{self, LinearMarketConfig, Version};
use pdm_datasets::Impression;
use pdm_linalg::Vector;
use pdm_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
// pdm-lint: allow(no-hashmap-iteration) reason="memo caches below are keyed lookups guarded by a mutex; no code path iterates them"
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Mixes a repetition index into a base seed (SplitMix64 finaliser).
///
/// Repetition 0 keeps the base seed untouched so the first rep of every cell
/// reproduces the original single-run binaries bit-for-bit; later reps get
/// well-separated streams.
#[must_use]
pub fn derive_seed(base: u64, rep: u64) -> u64 {
    if rep == 0 {
        return base;
    }
    let mut z = base ^ rep.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which contextual mechanism a [`JobSpec::Synthetic`] job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticMechanism {
    /// The paper's ellipsoid mechanism (Algorithms 1/2).
    Ellipsoid,
    /// The interval knowledge set of Theorem 3 (`n = 1` only).
    OneDim,
    /// The exact polytope ablation (two LPs per round).
    ExactPolytope,
}

/// A self-contained workload: everything needed to produce one
/// [`SimulationOutcome`], including the RNG seeds.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// One mechanism version on the MovieLens-backed noisy-linear-query
    /// market (Fig. 4 / 5(a) / Table I).
    LinearMarket {
        /// Market configuration (dimension, horizon, owners, δ, seed).
        config: LinearMarketConfig,
        /// Which of the four algorithm versions runs.
        version: Version,
    },
    /// The risk-averse baseline on the same market.
    LinearBaseline {
        /// Market configuration.
        config: LinearMarketConfig,
    },
    /// Accommodation rental under the log-linear model (Fig. 5(b)).
    Airbnb {
        /// Number of generated listings.
        listings: usize,
        /// Seed of the listing population and model fit (cache key part).
        pipeline_seed: u64,
        /// Reserve log-ratio `ln q / ln v`; `None` runs the pure version.
        log_ratio: Option<f64>,
        /// Run the risk-averse baseline instead of the mechanism
        /// (requires a `log_ratio`).
        baseline: bool,
        /// Seed of the simulation run.
        sim_seed: u64,
    },
    /// Impression pricing under the logistic model (Fig. 5(c)).
    Avazu {
        /// Total generated impressions (80 % train / 20 % priced).
        num_impressions: usize,
        /// Hashing dimension `n`.
        dim: usize,
        /// Seed of the click log and FTRL fit (cache key part).
        pipeline_seed: u64,
        /// Sparse or dense feature treatment.
        case: FeatureCase,
        /// Number of pricing rounds (the held-out stream is cycled).
        pricing_rounds: usize,
        /// Seed of the simulation run.
        sim_seed: u64,
    },
    /// A synthetic linear environment (regret scaling, ε ablation, the
    /// polytope-overhead ablation).
    Synthetic {
        /// Feature dimension `n`.
        dim: usize,
        /// Horizon `T`.
        rounds: usize,
        /// Seed of the environment draw.
        env_seed: u64,
        /// Seed of the simulation run.
        run_seed: u64,
        /// Reserve-price switch; `None` keeps the config default.
        reserve: Option<bool>,
        /// Explicit exploration threshold; `None` uses the paper's schedule.
        epsilon: Option<f64>,
        /// Which mechanism runs.
        mechanism: SyntheticMechanism,
    },
    /// The Lemma-8 adversarial game (deterministic, no RNG).
    Lemma8 {
        /// Horizon `T`.
        horizon: usize,
        /// Whether the misbehaving variant (cuts on conservative prices)
        /// plays.
        conservative_cuts: bool,
    },
}

impl JobSpec {
    /// Re-derives every seed in the spec for repetition `rep`
    /// (via [`derive_seed`]; rep 0 is the identity).
    #[must_use]
    pub fn with_rep(&self, rep: u64) -> JobSpec {
        let mut spec = self.clone();
        match &mut spec {
            JobSpec::LinearMarket { config, .. } | JobSpec::LinearBaseline { config } => {
                config.seed = derive_seed(config.seed, rep);
            }
            JobSpec::Airbnb {
                pipeline_seed,
                sim_seed,
                ..
            } => {
                // The replay environment is fully determined by the pipeline,
                // so replication must redraw the listing population itself.
                *pipeline_seed = derive_seed(*pipeline_seed, rep);
                *sim_seed = derive_seed(*sim_seed, rep);
            }
            JobSpec::Avazu {
                pipeline_seed,
                sim_seed,
                ..
            } => {
                *pipeline_seed = derive_seed(*pipeline_seed, rep);
                *sim_seed = derive_seed(*sim_seed, rep);
            }
            JobSpec::Synthetic {
                env_seed, run_seed, ..
            } => {
                *env_seed = derive_seed(*env_seed, rep);
                *run_seed = derive_seed(*run_seed, rep);
            }
            // The adversarial game has no randomness: every rep is the same.
            JobSpec::Lemma8 { .. } => {}
        }
        spec
    }

    /// Executes the workload to completion.
    ///
    /// # Panics
    /// Panics on inconsistent specs (an [`JobSpec::Airbnb`] baseline without
    /// a `log_ratio`, or [`SyntheticMechanism::OneDim`] with `dim != 1`).
    #[must_use]
    pub fn run(&self) -> SimulationOutcome {
        match self {
            JobSpec::LinearMarket { config, version } => {
                linear_market::run_version(config, *version)
            }
            JobSpec::LinearBaseline { config } => linear_market::run_reserve_baseline(config),
            JobSpec::Airbnb {
                listings,
                pipeline_seed,
                log_ratio,
                baseline,
                sim_seed,
            } => {
                let pipeline = cached_airbnb(*listings, *pipeline_seed);
                if *baseline {
                    let ratio = log_ratio.expect("an Airbnb baseline needs a log_ratio");
                    pipeline.run_baseline(ratio, *sim_seed)
                } else {
                    pipeline.run_mechanism(*log_ratio, *sim_seed)
                }
            }
            JobSpec::Avazu {
                num_impressions,
                dim,
                pipeline_seed,
                case,
                pricing_rounds,
                sim_seed,
            } => {
                let bundle = cached_avazu(*num_impressions, *dim, *pipeline_seed);
                let (pipeline, holdout) = &*bundle;
                let stream: Vec<Impression> = holdout
                    .iter()
                    .cloned()
                    .cycle()
                    .take(*pricing_rounds)
                    .collect();
                pipeline.run_mechanism(&stream, *case, *sim_seed)
            }
            JobSpec::Synthetic {
                dim,
                rounds,
                env_seed,
                run_seed,
                reserve,
                epsilon,
                mechanism,
            } => {
                let mut rng = StdRng::seed_from_u64(*env_seed);
                let env = SyntheticLinearEnvironment::builder(*dim)
                    .rounds(*rounds)
                    .build(&mut rng);
                let mut config = PricingConfig::for_environment(&env, *rounds);
                if let Some(use_reserve) = reserve {
                    config = config.with_reserve(*use_reserve);
                }
                if let Some(eps) = epsilon {
                    config = config.with_epsilon(*eps);
                }
                let mut run_rng = StdRng::seed_from_u64(*run_seed);
                match mechanism {
                    SyntheticMechanism::Ellipsoid => {
                        Simulation::new(env, EllipsoidPricing::new(LinearModel::new(*dim), config))
                            .run(&mut run_rng)
                    }
                    SyntheticMechanism::OneDim => {
                        assert_eq!(*dim, 1, "the interval mechanism is one-dimensional");
                        Simulation::new(env, OneDimPricing::one_dimensional(config))
                            .run(&mut run_rng)
                    }
                    SyntheticMechanism::ExactPolytope => Simulation::new(
                        env,
                        ExactPolytopePricing::exact(LinearModel::new(*dim), config),
                    )
                    .run(&mut run_rng),
                }
            }
            JobSpec::Lemma8 {
                horizon,
                conservative_cuts,
            } => {
                let theta_star = Vector::from_slice(&[0.5, 0.5]);
                let adversary = AdversarialLemma8Environment::new(*horizon, theta_star);
                let config = PricingConfig::new(1.0, *horizon)
                    .with_reserve(true)
                    .with_conservative_cuts(*conservative_cuts);
                let mut mechanism = EllipsoidPricing::new(LinearModel::new(2), config);
                let tracker = adversary.play(&mut mechanism);
                SimulationOutcome::from_report(mechanism.name(), tracker.report())
            }
        }
    }
}

/// A regret-curve checkpoint, resolved against the realised horizon when a
/// cell's rounds are only known after the first run (replay environments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Checkpoint {
    /// An absolute round index.
    Round(usize),
    /// A fraction of the realised horizon in `(0, 1]`.
    Fraction(f64),
}

impl Checkpoint {
    /// The concrete round index for a simulation of `rounds` rounds.
    #[must_use]
    pub fn resolve(self, rounds: usize) -> usize {
        match self {
            Checkpoint::Round(r) => r.min(rounds.max(1)),
            Checkpoint::Fraction(f) => ((rounds as f64 * f) as usize).clamp(1, rounds.max(1)),
        }
    }
}

/// One cell of an experiment: a labelled workload plus the checkpoints its
/// regret curve is sampled at.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Row label in tables and reports.
    pub label: String,
    /// The workload.
    pub spec: JobSpec,
    /// Where along the horizon the regret curve is sampled.
    pub checkpoints: Vec<Checkpoint>,
}

impl CellSpec {
    /// Creates a cell with no checkpoints.
    #[must_use]
    pub fn new(label: impl Into<String>, spec: JobSpec) -> Self {
        Self {
            label: label.into(),
            spec,
            checkpoints: Vec::new(),
        }
    }

    /// Attaches checkpoints.
    #[must_use]
    pub fn with_checkpoints(mut self, checkpoints: Vec<Checkpoint>) -> Self {
        self.checkpoints = checkpoints;
        self
    }
}

/// A job addressed within a grid: `(experiment, cell, rep)` plus the fully
/// reseeded spec to execute.
#[derive(Debug, Clone)]
pub struct Job {
    /// Index of the owning experiment in the grid.
    pub experiment: usize,
    /// Index of the owning cell within the experiment.
    pub cell: usize,
    /// Repetition index (0-based).
    pub rep: u64,
    /// The reseeded workload.
    pub spec: JobSpec,
}

/// Expands experiment cells into the flat, deterministic job list the runner
/// consumes: experiments × cells × repetitions, in index order.
#[must_use]
pub fn expand_jobs(experiments: &[Vec<CellSpec>], reps: u64) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (e, cells) in experiments.iter().enumerate() {
        for (c, cell) in cells.iter().enumerate() {
            for rep in 0..reps.max(1) {
                jobs.push(Job {
                    experiment: e,
                    cell: c,
                    rep,
                    spec: cell.spec.with_rep(rep),
                });
            }
        }
    }
    jobs
}

// pdm-lint: allow(no-hashmap-iteration) reason="pipeline memo cache: get-or-insert by exact key only, never iterated"
type AirbnbCache = Mutex<HashMap<(usize, u64), Arc<OnceLock<Arc<AirbnbPipeline>>>>>;
type AvazuBundle = Arc<(AvazuPipeline, Vec<Impression>)>;
// pdm-lint: allow(no-hashmap-iteration) reason="bundle memo cache: get-or-insert by exact key only, never iterated"
type AvazuCache = Mutex<HashMap<(usize, usize, u64), Arc<OnceLock<AvazuBundle>>>>;

static AIRBNB_CACHE: OnceLock<AirbnbCache> = OnceLock::new();
static AVAZU_CACHE: OnceLock<AvazuCache> = OnceLock::new();

/// Memoised [`airbnb_pipeline::default_pipeline`].  The per-key `OnceLock`
/// ensures concurrent workers build each pipeline exactly once.
fn cached_airbnb(listings: usize, seed: u64) -> Arc<AirbnbPipeline> {
    // pdm-lint: allow(no-hashmap-iteration) reason="lazy cache construction; the map is only ever probed by key"
    let cache = AIRBNB_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let slot = {
        let mut map = cache.lock().expect("airbnb cache poisoned");
        Arc::clone(map.entry((listings, seed)).or_default())
    };
    Arc::clone(slot.get_or_init(|| Arc::new(airbnb_pipeline::default_pipeline(listings, seed))))
}

/// Memoised [`avazu_pipeline::default_pipeline`].
fn cached_avazu(num_impressions: usize, dim: usize, seed: u64) -> AvazuBundle {
    // pdm-lint: allow(no-hashmap-iteration) reason="lazy cache construction; the map is only ever probed by key"
    let cache = AVAZU_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let slot = {
        let mut map = cache.lock().expect("avazu cache poisoned");
        Arc::clone(map.entry((num_impressions, dim, seed)).or_default())
    };
    Arc::clone(
        slot.get_or_init(|| Arc::new(avazu_pipeline::default_pipeline(num_impressions, dim, seed))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_identity_at_rep_zero_and_injective_like() {
        assert_eq!(derive_seed(42, 0), 42);
        let s1 = derive_seed(42, 1);
        let s2 = derive_seed(42, 2);
        assert_ne!(s1, 42);
        assert_ne!(s1, s2);
        // Deterministic.
        assert_eq!(derive_seed(42, 1), s1);
    }

    #[test]
    fn with_rep_reseeds_every_variant() {
        let config = LinearMarketConfig {
            dim: 4,
            rounds: 50,
            num_owners: 40,
            delta: 0.0,
            seed: 9,
        };
        let linear = JobSpec::LinearMarket {
            config,
            version: Version::Pure,
        };
        match linear.with_rep(3) {
            JobSpec::LinearMarket { config, .. } => assert_eq!(config.seed, derive_seed(9, 3)),
            other => panic!("variant changed: {other:?}"),
        }
        let synthetic = JobSpec::Synthetic {
            dim: 2,
            rounds: 10,
            env_seed: 5,
            run_seed: 6,
            reserve: None,
            epsilon: None,
            mechanism: SyntheticMechanism::Ellipsoid,
        };
        match synthetic.with_rep(2) {
            JobSpec::Synthetic {
                env_seed, run_seed, ..
            } => {
                assert_eq!(env_seed, derive_seed(5, 2));
                assert_eq!(run_seed, derive_seed(6, 2));
            }
            other => panic!("variant changed: {other:?}"),
        }
        // Lemma 8 is deterministic: reps are intentionally identical.
        let lemma = JobSpec::Lemma8 {
            horizon: 10,
            conservative_cuts: false,
        };
        match lemma.with_rep(5) {
            JobSpec::Lemma8 { horizon, .. } => assert_eq!(horizon, 10),
            other => panic!("variant changed: {other:?}"),
        }
    }

    #[test]
    fn checkpoints_resolve_against_the_horizon() {
        assert_eq!(Checkpoint::Round(100).resolve(50), 50);
        assert_eq!(Checkpoint::Round(10).resolve(50), 10);
        assert_eq!(Checkpoint::Fraction(0.25).resolve(1_000), 250);
        assert_eq!(Checkpoint::Fraction(1.0).resolve(77), 77);
        assert_eq!(Checkpoint::Fraction(0.0001).resolve(100), 1);
    }

    #[test]
    fn expand_jobs_orders_by_experiment_cell_rep() {
        let cell = |label: &str| {
            CellSpec::new(
                label,
                JobSpec::Lemma8 {
                    horizon: 4,
                    conservative_cuts: false,
                },
            )
        };
        let experiments = vec![vec![cell("a"), cell("b")], vec![cell("c")]];
        let jobs = expand_jobs(&experiments, 2);
        assert_eq!(jobs.len(), 6);
        let addresses: Vec<(usize, usize, u64)> =
            jobs.iter().map(|j| (j.experiment, j.cell, j.rep)).collect();
        assert_eq!(
            addresses,
            vec![
                (0, 0, 0),
                (0, 0, 1),
                (0, 1, 0),
                (0, 1, 1),
                (1, 0, 0),
                (1, 0, 1),
            ]
        );
        // `reps = 0` still runs each cell once.
        assert_eq!(expand_jobs(&experiments, 0).len(), 3);
    }

    #[test]
    fn synthetic_and_lemma8_jobs_run_end_to_end() {
        let outcome = JobSpec::Synthetic {
            dim: 2,
            rounds: 60,
            env_seed: 1,
            run_seed: 2,
            reserve: Some(true),
            epsilon: None,
            mechanism: SyntheticMechanism::Ellipsoid,
        }
        .run();
        assert_eq!(outcome.report.rounds, 60);
        assert!(outcome.cumulative_regret().is_finite());

        let lemma = JobSpec::Lemma8 {
            horizon: 20,
            conservative_cuts: true,
        }
        .run();
        assert_eq!(lemma.report.rounds, 20);
        assert!(lemma.round_latency_p50_micros.is_nan());
    }
}
