//! Small statistics helpers shared across the workspace.
//!
//! Table I of the paper reports the mean and standard deviation of the market
//! value, reserve price, posted price, and per-round regret.  [`OnlineStats`]
//! accumulates those quantities in one pass (Welford's algorithm) without
//! storing the whole trace, which matters for the 10⁵-round sweeps.

use crate::error::{LinalgError, Result};
use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice; zero for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation (divide by `n`); zero for fewer than one
/// element.
#[must_use]
pub fn population_std(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Sample standard deviation (divide by `n - 1`); zero for fewer than two
/// elements.
#[must_use]
pub fn sample_std(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Linearly-interpolated quantile of an **ascending-sorted** slice, with `q`
/// clamped to `[0, 1]` (`q = 0.5` is the median, `q = 0.99` the p99).
///
/// A single element is every quantile of itself.
///
/// # Errors
/// Returns [`LinalgError::Empty`] for an empty slice — a quantile of nothing
/// is undefined, and silently producing `NaN` used to poison downstream
/// aggregates.  Callers that want a sentinel instead opt in explicitly with
/// `.unwrap_or(f64::NAN)`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Result<f64> {
    if sorted.is_empty() {
        return Err(LinalgError::Empty {
            operation: "quantile_sorted",
        });
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Sorts a copy of `values` and reads off one quantile per entry of `qs`.
///
/// Convenience wrapper over [`quantile_sorted`] for callers that hold an
/// unsorted latency trace and want, say, the p50 and p99 in one pass.
///
/// # Errors
/// Returns [`LinalgError::Empty`] when `values` is empty (see
/// [`quantile_sorted`]).
pub fn quantiles(values: &[f64], qs: &[f64]) -> Result<Vec<f64>> {
    if values.is_empty() {
        return Err(LinalgError::Empty {
            operation: "quantiles",
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    qs.iter().map(|&q| quantile_sorted(&sorted, q)).collect()
}

/// A bounded sliding window of the most recent samples, for quantile
/// estimation over unbounded streams.
///
/// Long-lived processes (serving engines, open-ended pricing sessions)
/// record one latency sample per request forever; retaining them all would
/// grow memory without bound.  `SampleWindow` keeps the most recent
/// `capacity` samples in a ring buffer — pair it with [`OnlineStats`] for
/// exact all-time mean/min/max alongside windowed percentiles.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    samples: Vec<f64>,
    capacity: usize,
    cursor: usize,
}

impl SampleWindow {
    /// An empty window retaining at most `capacity` samples (clamped to at
    /// least 1).  No memory is reserved up front; the buffer grows with the
    /// stream until it reaches capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            samples: Vec::new(),
            capacity: capacity.max(1),
            cursor: 0,
        }
    }

    /// Pushes one sample, evicting the oldest once the window is full.
    pub fn push(&mut self, sample: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.cursor] = sample;
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    /// Number of samples currently retained (`<= capacity`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been retained yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The configured retention capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained samples in storage (not arrival) order — sufficient for
    /// order-insensitive consumers like [`quantiles`].
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.samples
    }

    /// The retained samples in oldest-to-newest order (once the ring has
    /// wrapped, storage indices `0..cursor` hold the newest samples).
    pub fn iter_chronological(&self) -> impl Iterator<Item = f64> + '_ {
        let (newest, oldest) = self.samples.split_at(self.cursor);
        oldest.iter().chain(newest.iter()).copied()
    }

    /// Quantiles over the retained window (e.g. `&[0.5, 0.99]`).
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] when the window holds no samples yet.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>> {
        quantiles(&self.samples, qs)
    }
}

/// Streaming mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every observation in `values`.
    pub fn extend(&mut self, values: &[f64]) {
        for &v in values {
            self.push(v);
        }
    }

    /// Rebuilds an accumulator from previously captured raw state — the
    /// persistence path (e.g. `pdm-service` snapshots).  `m2` is the raw
    /// second central moment as returned by [`OnlineStats::m2`]; a restored
    /// accumulator continues bit-identically to the original.
    #[must_use]
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, sum: f64, min: f64, max: f64) -> Self {
        if count == 0 {
            return Self::new();
        }
        Self {
            count,
            mean,
            m2,
            min,
            max,
            sum,
        }
    }

    /// The raw aggregated second central moment `Σ (x − mean)²` (Welford's
    /// `M2`), exposed so persistence layers can round-trip the accumulator
    /// exactly; everyday callers want the variance accessors instead.
    #[must_use]
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (zero when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of the observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (zero when empty).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (zero when fewer than two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn slice_helpers_match_known_values() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx_eq(mean(&data), 5.0, 1e-12));
        assert!(approx_eq(population_std(&data), 2.0, 1e-12));
        assert!(sample_std(&data) > population_std(&data));
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(population_std(&[]), 0.0);
        assert_eq!(sample_std(&[]), 0.0);
        assert_eq!(sample_std(&[1.0]), 0.0);
    }

    #[test]
    fn quantiles_interpolate_and_handle_edges() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        let q = |s: &[f64], q: f64| quantile_sorted(s, q).unwrap();
        assert!(approx_eq(q(&sorted, 0.0), 1.0, 1e-12));
        assert!(approx_eq(q(&sorted, 0.5), 3.0, 1e-12));
        assert!(approx_eq(q(&sorted, 1.0), 5.0, 1e-12));
        assert!(approx_eq(q(&sorted, 0.25), 2.0, 1e-12));
        // Interpolation between ranks.
        assert!(approx_eq(q(&[1.0, 2.0], 0.75), 1.75, 1e-12));
        // Out-of-range q is clamped; single element is every quantile.
        assert!(approx_eq(q(&[7.0], 0.99), 7.0, 1e-12));
        assert!(approx_eq(q(&sorted, 2.0), 5.0, 1e-12));
    }

    #[test]
    fn empty_input_is_a_documented_error_not_nan() {
        assert_eq!(
            quantile_sorted(&[], 0.5),
            Err(LinalgError::Empty {
                operation: "quantile_sorted"
            })
        );
        assert_eq!(
            quantiles(&[], &[0.5, 0.99]),
            Err(LinalgError::Empty {
                operation: "quantiles"
            })
        );
        // The error message names the operation for actionable diagnostics.
        let message = quantiles(&[], &[0.5]).unwrap_err().to_string();
        assert!(message.contains("quantiles"), "{message}");
    }

    #[test]
    fn sample_window_evicts_oldest_and_iterates_chronologically() {
        let mut window = SampleWindow::new(4);
        assert!(window.is_empty());
        assert!(window.quantiles(&[0.5]).is_err());
        for i in 0..6 {
            window.push(i as f64);
        }
        // Capacity 4 retains the newest samples 2..=5.
        assert_eq!(window.len(), 4);
        assert_eq!(window.capacity(), 4);
        let chronological: Vec<f64> = window.iter_chronological().collect();
        assert_eq!(chronological, vec![2.0, 3.0, 4.0, 5.0]);
        let qs = window.quantiles(&[0.0, 1.0]).unwrap();
        assert_eq!(qs, vec![2.0, 5.0]);
        // Degenerate capacity is clamped to one sample.
        let mut tiny = SampleWindow::new(0);
        tiny.push(1.0);
        tiny.push(2.0);
        assert_eq!(tiny.as_slice(), &[2.0]);
    }

    #[test]
    fn quantiles_sorts_a_copy() {
        let unsorted = [5.0, 1.0, 3.0, 2.0, 4.0];
        let qs = quantiles(&unsorted, &[0.5, 0.99]).unwrap();
        assert!(approx_eq(qs[0], 3.0, 1e-12));
        assert!(approx_eq(qs[1], 4.96, 1e-12));
        // The input slice is untouched.
        assert_eq!(unsorted[0], 5.0);
    }

    #[test]
    fn online_matches_batch() {
        let data = [1.5, -2.0, 3.25, 0.0, 10.0, -7.5];
        let mut s = OnlineStats::new();
        s.extend(&data);
        assert_eq!(s.count(), data.len() as u64);
        assert!(approx_eq(s.mean(), mean(&data), 1e-12));
        assert!(approx_eq(s.population_std(), population_std(&data), 1e-12));
        assert!(approx_eq(s.sample_std(), sample_std(&data), 1e-12));
        assert!(approx_eq(s.sum(), data.iter().sum::<f64>(), 1e-12));
        assert_eq!(s.min(), -7.5);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut sa = OnlineStats::new();
        sa.extend(&a);
        let mut sb = OnlineStats::new();
        sb.extend(&b);
        sa.merge(&sb);

        let mut all = OnlineStats::new();
        all.extend(&a);
        all.extend(&b);

        assert_eq!(sa.count(), all.count());
        assert!(approx_eq(sa.mean(), all.mean(), 1e-12));
        assert!(approx_eq(
            sa.population_variance(),
            all.population_variance(),
            1e-9
        ));
        assert_eq!(sa.min(), all.min());
        assert_eq!(sa.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.extend(&[1.0, 2.0]);
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), before.count());
        assert!(approx_eq(s.mean(), before.mean(), 1e-15));

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn empty_online_stats_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_std(), 0.0);
        assert_eq!(s.count(), 0);
    }
}
