//! A dense two-phase simplex solver for small linear programs.
//!
//! The paper observes that pricing with the *exact* polytope knowledge set
//! requires solving two linear programs per round, which is too slow for an
//! online market; the ellipsoid relaxation replaces them with a handful of
//! matrix–vector products.  This module provides the LP solver that (a) lets
//! the test-suite cross-check ellipsoid bounds against the exact polytope
//! bounds in low dimension and (b) powers the "exact polytope pricing"
//! baseline used in the ablation benchmarks to demonstrate the latency gap.
//!
//! The solver handles problems of the form
//!
//! ```text
//! maximize    c^T x
//! subject to  A x <= b        (b may have negative entries)
//!             x >= 0
//! ```
//!
//! using the standard two-phase tableau method with Bland's anti-cycling rule.
//! Callers with free (sign-unrestricted) variables shift them into the
//! non-negative orthant before building the program (see
//! `pdm-ellipsoid::Polytope`).

use crate::error::{LinalgError, Result};

/// Outcome of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// An optimal solution to a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal value of the objective `c^T x`.
    pub objective: f64,
    /// Optimal primal point.
    pub x: Vec<f64>,
}

/// A linear program `max c^T x  s.t.  A x <= b, x >= 0`.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Vec<f64>>,
    rhs: Vec<f64>,
}

/// Pivoting tolerance: entries smaller than this are treated as zero.
const PIVOT_TOL: f64 = 1e-9;
/// Feasibility tolerance for the phase-1 objective.
const FEAS_TOL: f64 = 1e-7;
/// Hard cap on pivots, proportional guard against degenerate stalling.
const MAX_PIVOTS: usize = 10_000;

impl LinearProgram {
    /// Creates a linear program with the given objective (to maximise).
    #[must_use]
    pub fn new(objective: Vec<f64>) -> Self {
        Self {
            objective,
            constraints: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a constraint `coeffs · x <= rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `coeffs.len()` differs
    /// from the number of variables.
    pub fn add_constraint_le(&mut self, coeffs: Vec<f64>, rhs: f64) -> Result<()> {
        if coeffs.len() != self.num_vars() {
            return Err(LinalgError::DimensionMismatch {
                operation: "LinearProgram::add_constraint_le",
                expected: self.num_vars(),
                actual: coeffs.len(),
            });
        }
        self.constraints.push(coeffs);
        self.rhs.push(rhs);
        Ok(())
    }

    /// Adds a constraint `coeffs · x >= rhs` (stored as `-coeffs · x <= -rhs`).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn add_constraint_ge(&mut self, coeffs: Vec<f64>, rhs: f64) -> Result<()> {
        let negated: Vec<f64> = coeffs.iter().map(|c| -c).collect();
        self.add_constraint_le(negated, -rhs)
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] for a program with zero variables and
    /// [`LinalgError::NoConvergence`] if the pivot cap is hit (which indicates
    /// a pathological or massively degenerate instance).
    pub fn solve(&self) -> Result<LpOutcome> {
        let n = self.num_vars();
        if n == 0 {
            return Err(LinalgError::Empty {
                operation: "LinearProgram::solve",
            });
        }
        let m = self.num_constraints();
        if m == 0 {
            // Without constraints, any positive objective coefficient makes
            // the program unbounded; otherwise x = 0 is optimal.
            if self.objective.iter().any(|&c| c > PIVOT_TOL) {
                return Ok(LpOutcome::Unbounded);
            }
            return Ok(LpOutcome::Optimal(LpSolution {
                objective: 0.0,
                x: vec![0.0; n],
            }));
        }

        // -- Tableau layout ---------------------------------------------------
        // Columns: [x_0..x_{n-1} | slack/surplus_0..m-1 | artificial_* | rhs]
        // Rows:    [constraint_0..m-1 | objective]
        // We first normalise every row so its RHS is non-negative; rows that
        // were flipped receive a surplus variable (-1) plus an artificial
        // variable, others receive a plain slack.
        let needs_artificial: Vec<bool> = self.rhs.iter().map(|&b| b < 0.0).collect();
        let num_artificial = needs_artificial.iter().filter(|&&flip| flip).count();
        let slack_offset = n;
        let art_offset = n + m;
        let total_cols = n + m + num_artificial + 1; // +1 for RHS
        let rhs_col = total_cols - 1;

        let mut tableau = vec![vec![0.0_f64; total_cols]; m + 1];
        let mut basis = vec![0usize; m];

        let mut art_index = 0usize;
        for i in 0..m {
            let flip = if needs_artificial[i] { -1.0 } else { 1.0 };
            for (dst, &src) in tableau[i][..n].iter_mut().zip(&self.constraints[i]) {
                *dst = flip * src;
            }
            // Slack (or surplus after the flip) variable for this row.
            tableau[i][slack_offset + i] = flip;
            tableau[i][rhs_col] = flip * self.rhs[i];
            if needs_artificial[i] {
                let col = art_offset + art_index;
                tableau[i][col] = 1.0;
                basis[i] = col;
                art_index += 1;
            } else {
                basis[i] = slack_offset + i;
            }
        }

        // -- Phase 1: minimise the sum of artificial variables ----------------
        if num_artificial > 0 {
            // Objective row: maximise -(sum of artificials).
            tableau[m].fill(0.0);
            tableau[m][art_offset..art_offset + num_artificial].fill(-1.0);
            // Price out the artificial basis columns.
            let (constraint_rows, objective_rows) = tableau.split_at_mut(m);
            for (i, row) in constraint_rows.iter().enumerate() {
                if basis[i] >= art_offset {
                    for (dst, &src) in objective_rows[0].iter_mut().zip(row) {
                        *dst += src;
                    }
                }
            }
            Self::run_simplex(&mut tableau, &mut basis, rhs_col)?;
            // With the reduced-cost convention used here the objective row's
            // RHS equals minus the phase-1 objective, i.e. the residual sum of
            // artificial variables. A positive residual means infeasible.
            let artificial_residual = tableau[m][rhs_col];
            if artificial_residual > FEAS_TOL {
                return Ok(LpOutcome::Infeasible);
            }
            // Drive any artificial variables that linger in the basis at value
            // zero out of it, if possible.
            for i in 0..m {
                if basis[i] >= art_offset {
                    let pivot_col = tableau[i][..art_offset]
                        .iter()
                        .position(|a| a.abs() > PIVOT_TOL);
                    if let Some(col) = pivot_col {
                        Self::pivot(&mut tableau, &mut basis, i, col);
                    }
                }
            }
        }

        // -- Phase 2: original objective --------------------------------------
        tableau[m].fill(0.0);
        tableau[m][..n].copy_from_slice(&self.objective);
        // Zero out artificial columns so they can never re-enter.
        for row in tableau.iter_mut().take(m) {
            row[art_offset..art_offset + num_artificial].fill(0.0);
        }
        // Price out the current basis.
        {
            let (constraint_rows, objective_rows) = tableau.split_at_mut(m);
            let objective_row = &mut objective_rows[0];
            for (i, row) in constraint_rows.iter().enumerate() {
                let coeff = objective_row[basis[i]];
                if coeff.abs() > 0.0 {
                    for (dst, &src) in objective_row.iter_mut().zip(row) {
                        *dst -= coeff * src;
                    }
                }
            }
        }
        let bounded = Self::run_simplex(&mut tableau, &mut basis, rhs_col)?;
        if !bounded {
            return Ok(LpOutcome::Unbounded);
        }

        // -- Extract the solution ---------------------------------------------
        let mut x = vec![0.0; n];
        for i in 0..m {
            if basis[i] < n {
                x[basis[i]] = tableau[i][rhs_col];
            }
        }
        let objective = self
            .objective
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum();
        Ok(LpOutcome::Optimal(LpSolution { objective, x }))
    }

    /// Runs simplex pivots until optimality (returns `Ok(true)`) or detects an
    /// unbounded direction (returns `Ok(false)`).
    fn run_simplex(tableau: &mut [Vec<f64>], basis: &mut [usize], rhs_col: usize) -> Result<bool> {
        let m = basis.len();
        for _ in 0..MAX_PIVOTS {
            // Entering column: Bland's rule — smallest index with positive
            // reduced cost (we maximise, and the objective row stores the
            // current reduced costs directly).
            let entering = tableau[m][..rhs_col].iter().position(|&c| c > PIVOT_TOL);
            let Some(col) = entering else {
                return Ok(true);
            };
            // Leaving row: minimum ratio test, ties broken by smallest basis
            // index (Bland).
            let mut leaving: Option<(usize, f64)> = None;
            for i in 0..m {
                let a = tableau[i][col];
                if a > PIVOT_TOL {
                    let ratio = tableau[i][rhs_col] / a;
                    match leaving {
                        None => leaving = Some((i, ratio)),
                        Some((best_i, best_ratio)) => {
                            if ratio < best_ratio - PIVOT_TOL
                                || ((ratio - best_ratio).abs() <= PIVOT_TOL
                                    && basis[i] < basis[best_i])
                            {
                                leaving = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return Ok(false);
            };
            Self::pivot(tableau, basis, row, col);
        }
        Err(LinalgError::NoConvergence {
            algorithm: "simplex",
            iterations: MAX_PIVOTS,
        })
    }

    /// Performs a single pivot on `(row, col)`.
    fn pivot(tableau: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
        let pivot_val = tableau[row][col];
        for v in &mut tableau[row] {
            *v /= pivot_val;
        }
        // One O(width) copy per pivot keeps the elimination loop a clean
        // two-slice zip (the update itself is O(rows × width)).
        let pivot_row = tableau[row].clone();
        for (i, other) in tableau.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = other[col];
            if factor.abs() <= 0.0 {
                continue;
            }
            for (dst, &src) in other.iter_mut().zip(&pivot_row) {
                *dst -= factor * src;
            }
        }
        basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn expect_optimal(outcome: LpOutcome) -> LpSolution {
        match outcome {
            LpOutcome::Optimal(sol) => sol,
            other => panic!("expected optimal solution, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximisation() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
        // Optimum: x = 2, y = 6, objective 36.
        let mut lp = LinearProgram::new(vec![3.0, 5.0]);
        lp.add_constraint_le(vec![1.0, 0.0], 4.0).unwrap();
        lp.add_constraint_le(vec![0.0, 2.0], 12.0).unwrap();
        lp.add_constraint_le(vec![3.0, 2.0], 18.0).unwrap();
        let sol = expect_optimal(lp.solve().unwrap());
        assert!(approx_eq(sol.objective, 36.0, 1e-7));
        assert!(approx_eq(sol.x[0], 2.0, 1e-7));
        assert!(approx_eq(sol.x[1], 6.0, 1e-7));
    }

    #[test]
    fn ge_constraints_require_phase_one() {
        // max x + y s.t. x + y <= 10, x >= 2, y >= 3.
        let mut lp = LinearProgram::new(vec![1.0, 1.0]);
        lp.add_constraint_le(vec![1.0, 1.0], 10.0).unwrap();
        lp.add_constraint_ge(vec![1.0, 0.0], 2.0).unwrap();
        lp.add_constraint_ge(vec![0.0, 1.0], 3.0).unwrap();
        let sol = expect_optimal(lp.solve().unwrap());
        assert!(approx_eq(sol.objective, 10.0, 1e-7));
    }

    #[test]
    fn minimisation_via_negated_objective() {
        // min x + 2y  s.t. x + y >= 4, x <= 3, y <= 5  ==  max -(x + 2y).
        // Optimum of the min problem: x = 3, y = 1, value 5.
        let mut lp = LinearProgram::new(vec![-1.0, -2.0]);
        lp.add_constraint_ge(vec![1.0, 1.0], 4.0).unwrap();
        lp.add_constraint_le(vec![1.0, 0.0], 3.0).unwrap();
        lp.add_constraint_le(vec![0.0, 1.0], 5.0).unwrap();
        let sol = expect_optimal(lp.solve().unwrap());
        assert!(approx_eq(-sol.objective, 5.0, 1e-7));
        assert!(approx_eq(sol.x[0], 3.0, 1e-7));
        assert!(approx_eq(sol.x[1], 1.0, 1e-7));
    }

    #[test]
    fn detects_infeasibility() {
        // x <= 1 and x >= 2 cannot both hold.
        let mut lp = LinearProgram::new(vec![1.0]);
        lp.add_constraint_le(vec![1.0], 1.0).unwrap();
        lp.add_constraint_ge(vec![1.0], 2.0).unwrap();
        assert_eq!(lp.solve().unwrap(), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // max x with only x >= 1 — unbounded above.
        let mut lp = LinearProgram::new(vec![1.0]);
        lp.add_constraint_ge(vec![1.0], 1.0).unwrap();
        assert_eq!(lp.solve().unwrap(), LpOutcome::Unbounded);
    }

    #[test]
    fn no_constraints_cases() {
        let lp = LinearProgram::new(vec![1.0, 0.0]);
        assert_eq!(lp.solve().unwrap(), LpOutcome::Unbounded);
        let lp2 = LinearProgram::new(vec![-1.0, -2.0]);
        let sol = expect_optimal(lp2.solve().unwrap());
        assert_eq!(sol.x, vec![0.0, 0.0]);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn zero_variable_program_is_an_error() {
        let lp = LinearProgram::new(vec![]);
        assert!(lp.solve().is_err());
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut lp = LinearProgram::new(vec![1.0, 2.0]);
        assert!(lp.add_constraint_le(vec![1.0], 1.0).is_err());
        assert!(lp.add_constraint_ge(vec![1.0, 2.0, 3.0], 1.0).is_err());
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Degenerate vertex at the origin with redundant constraints.
        let mut lp = LinearProgram::new(vec![1.0, 1.0]);
        lp.add_constraint_le(vec![1.0, 0.0], 0.0).unwrap();
        lp.add_constraint_le(vec![1.0, 1.0], 0.0).unwrap();
        lp.add_constraint_le(vec![0.0, 1.0], 0.0).unwrap();
        let sol = expect_optimal(lp.solve().unwrap());
        assert!(approx_eq(sol.objective, 0.0, 1e-9));
    }

    #[test]
    fn box_support_function() {
        // Support of the box [0,1]^3 in direction (1,2,3) is 6.
        let mut lp = LinearProgram::new(vec![1.0, 2.0, 3.0]);
        for i in 0..3 {
            let mut row = vec![0.0; 3];
            row[i] = 1.0;
            lp.add_constraint_le(row, 1.0).unwrap();
        }
        let sol = expect_optimal(lp.solve().unwrap());
        assert!(approx_eq(sol.objective, 6.0, 1e-7));
    }
}
