//! Dense `f64` vectors.
//!
//! [`Vector`] is a thin, owned wrapper around `Vec<f64>` with the operations
//! needed by the ellipsoid machinery (dot products, norms, scaled additions)
//! and by the learners (elementwise maps, slicing into feature blocks).

use crate::error::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, heap-allocated vector of `f64` values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` ones.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        Self {
            data: vec![1.0; len],
        }
    }

    /// Creates a vector whose entries are all `value`.
    #[must_use]
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Creates the `i`-th standard basis vector of dimension `len`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[must_use]
    pub fn basis(len: usize, i: usize) -> Self {
        assert!(i < len, "basis index {i} out of range for dimension {len}");
        let mut v = Self::zeros(len);
        v.data[i] = 1.0;
        v
    }

    /// Builds a vector from a slice.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        Self {
            data: values.to_vec(),
        }
    }

    /// Builds a vector from an owned `Vec<f64>` without copying.
    #[must_use]
    pub fn from_vec(values: Vec<f64>) -> Self {
        Self { data: values }
    }

    /// Builds a vector by evaluating `f(i)` for `i` in `0..len`.
    #[must_use]
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> f64) -> Self {
        Self {
            data: (0..len).map(f).collect(),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Overwrites `self` with the contents of `src`, reusing the existing
    /// allocation whenever its capacity suffices.
    ///
    /// This is the scratch-buffer primitive of the pricing hot loop: a
    /// session copies each round's features into a long-lived buffer instead
    /// of cloning a fresh `Vec` per round.
    pub fn copy_from(&mut self, src: &Vector) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Resizes the vector to `len` entries, zero-filling any growth and
    /// reusing the existing allocation whenever its capacity suffices.
    ///
    /// Used by the `*_into` kernels to shape a scratch buffer before
    /// overwriting every entry.
    pub fn resize(&mut self, len: usize) {
        self.data.resize(len, 0.0);
    }

    /// Consumes the vector and returns the underlying storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over entries.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.data.iter()
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn dot(&self, other: &Self) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "Vector::dot",
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Euclidean (L2) norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    #[must_use]
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// L∞ norm (maximum absolute value); zero for an empty vector.
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Sum of entries.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of entries; zero for an empty vector.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Returns a copy scaled by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Scales the vector in place by `factor`.
    pub fn scale_mut(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Returns a copy with each entry transformed by `f`.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Normalises the vector to unit L2 norm and returns it.
    ///
    /// A zero vector is returned unchanged (there is no direction to keep).
    #[must_use]
    pub fn normalized(&self) -> Self {
        let n = self.norm();
        if n == 0.0 {
            self.clone()
        } else {
            self.scaled(1.0 / n)
        }
    }

    /// In-place `self += alpha * other` (the BLAS "axpy" primitive).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Self) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "Vector::axpy",
                expected: self.len(),
                actual: other.len(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn hadamard(&self, other: &Self) -> Result<Self> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "Vector::hadamard",
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(Self {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Largest entry; `f64::NEG_INFINITY` for an empty vector.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .fold(f64::NEG_INFINITY, |acc, &x| acc.max(x))
    }

    /// Smallest entry; `f64::INFINITY` for an empty vector.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.data.iter().fold(f64::INFINITY, |acc, &x| acc.min(x))
    }

    /// Number of entries whose absolute value exceeds `tol`.
    #[must_use]
    pub fn count_nonzero(&self, tol: f64) -> usize {
        self.data.iter().filter(|x| x.abs() > tol).count()
    }

    /// Returns `true` when every entry is finite (no NaN / infinity).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Concatenates `self` with `other` into a new vector.
    #[must_use]
    pub fn concat(&self, other: &Self) -> Self {
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Self { data }
    }

    /// Euclidean distance to another vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn distance(&self, other: &Self) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "Vector::distance",
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt())
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, index: usize) -> &Self::Output {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut Self::Output {
        &mut self.data[index]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Self::from_slice(data)
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "Vector add: length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "Vector sub: length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "Vector add_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "Vector sub_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn constructors() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(Vector::filled(2, 5.0).as_slice(), &[5.0, 5.0]);
        assert_eq!(Vector::basis(3, 1).as_slice(), &[0.0, 1.0, 0.0]);
        assert_eq!(
            Vector::from_fn(3, |i| i as f64).as_slice(),
            &[0.0, 1.0, 2.0]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(2, 5);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, -5.0, 6.0]);
        assert!(approx_eq(a.dot(&b).unwrap(), 12.0, 1e-12));
        assert!(approx_eq(a.norm(), 14.0_f64.sqrt(), 1e-12));
        assert!(approx_eq(b.norm_l1(), 15.0, 1e-12));
        assert!(approx_eq(b.norm_inf(), 6.0, 1e-12));
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);

        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from_slice(&[1.0, 1.0]);
        let b = Vector::from_slice(&[2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn normalized_is_unit_norm() {
        let a = Vector::from_slice(&[3.0, 4.0]);
        assert!(approx_eq(a.normalized().norm(), 1.0, 1e-12));
        // A zero vector stays zero.
        let z = Vector::zeros(4);
        assert_eq!(z.normalized(), z);
    }

    #[test]
    fn statistics_helpers() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert!(approx_eq(a.sum(), 10.0, 1e-12));
        assert!(approx_eq(a.mean(), 2.5, 1e-12));
        assert!(approx_eq(a.max(), 4.0, 1e-12));
        assert!(approx_eq(a.min(), 1.0, 1e-12));
        assert_eq!(a.count_nonzero(1e-12), 4);
        assert_eq!(Vector::zeros(3).count_nonzero(1e-12), 0);
    }

    #[test]
    fn hadamard_product() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn distance_and_concat() {
        let a = Vector::from_slice(&[0.0, 0.0]);
        let b = Vector::from_slice(&[3.0, 4.0]);
        assert!(approx_eq(a.distance(&b).unwrap(), 5.0, 1e-12));
        assert_eq!(a.concat(&b).as_slice(), &[0.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn finite_detection() {
        assert!(Vector::from_slice(&[1.0, 2.0]).is_finite());
        assert!(!Vector::from_slice(&[1.0, f64::NAN]).is_finite());
        assert!(!Vector::from_slice(&[f64::INFINITY]).is_finite());
    }

    #[test]
    fn copy_from_reuses_capacity() {
        let mut buffer = Vector::zeros(4);
        let capacity_probe = buffer.data.capacity();
        let src = Vector::from_slice(&[1.0, 2.0]);
        buffer.copy_from(&src);
        assert_eq!(buffer.as_slice(), &[1.0, 2.0]);
        // Shrinking stays within the original allocation.
        assert_eq!(buffer.data.capacity(), capacity_probe);
        // Growing past capacity still produces the right contents.
        let big = Vector::from_fn(16, |i| i as f64);
        buffer.copy_from(&big);
        assert_eq!(buffer, big);
    }

    #[test]
    fn map_and_iterators() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        assert_eq!(a.map(|x| x * x).as_slice(), &[1.0, 4.0]);
        let collected: Vector = a.iter().map(|x| x + 1.0).collect();
        assert_eq!(collected.as_slice(), &[2.0, 3.0]);
        let summed: f64 = (&a).into_iter().sum();
        assert!(approx_eq(summed, 3.0, 1e-12));
    }

    #[test]
    fn serde_impls_exist() {
        // Compile-time check that the derives provide both impls; an actual
        // format round-trip needs a real serde_json, which the offline build
        // does not have (see vendor/README.md).
        fn assert_serde<T: Serialize + for<'de> Deserialize<'de>>() {}
        assert_serde::<Vector>();
    }
}
