//! A minimal JSON tree with a deterministic writer and a strict parser.
//!
//! The vendored `serde` stand-in deliberately ships no `serde_json` (see
//! `vendor/README.md`), so every machine-readable artifact in the workspace —
//! the `BENCH_*.json` reports of `pdm-bench` and the tenant-state snapshots
//! of `pdm-service` — serialises through this hand-rolled module instead.  It
//! lives here because `pdm-linalg` is the dependency-free root of the crate
//! DAG, so both producers can share one implementation.  Two properties
//! matter for those pipelines and are covered by tests:
//!
//! * **Determinism** — object keys keep insertion order and numbers render
//!   through `f64`'s shortest-round-trip `Display`, so the same report always
//!   produces the same bytes (the determinism suite compares outputs of runs
//!   with different worker counts byte-for-byte).
//! * **Round-trip** — `parse(render(v))` reproduces `v` for every value this
//!   module can emit.  Non-finite numbers are written as `null` (JSON has no
//!   NaN/inf) and read back as NaN.  Finite numbers round-trip *exactly*:
//!   Rust's `Display` for `f64` prints the shortest decimal that parses back
//!   to the same bits, which is what makes JSON snapshots bit-faithful.

use std::fmt::Write as _;

/// A JSON value.  Objects preserve insertion order (no map type) so renders
/// are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used to encode non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (keeps the given order).
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_owned())
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.  `Null` reads back as NaN (the writer encodes
    /// non-finite numbers as `null`), anything else is `None`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives and fractions).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value with two-space indentation and a trailing newline,
    /// the format the `BENCH_*.json` files are written in.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_sequence(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                });
            }
            Json::Obj(pairs) => {
                write_sequence(out, indent, level, '{', '}', pairs.len(), |out, i| {
                    let (key, value) = &pairs[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                });
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

/// Shared body/indentation logic for arrays and objects.
fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // pdm-lint: allow(no-lossy-cast) reason="char to u32 is lossless by the language definition; the lexical lint cannot see the source type"
            c if (c as u32) < 0x20 => {
                // pdm-lint: allow(no-lossy-cast) reason="char to u32 is lossless by the language definition; the lexical lint cannot see the source type"
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so this is
                // always at a char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                // pdm-lint: allow(no-unwrap-in-lib) reason="the match arm above guarantees the remainder is non-empty"
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid UTF-8")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let value = Json::obj(vec![
            ("a", Json::Num(1.0)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c", Json::str("x\ny")),
        ]);
        assert_eq!(value.render(), r#"{"a":1,"b":[true,null],"c":"x\ny"}"#);
        let pretty = value.render_pretty();
        assert!(pretty.contains("\n  \"a\": 1,"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn round_trips_every_emittable_value() {
        let value = Json::obj(vec![
            ("int", Json::Num(42.0)),
            ("neg", Json::Num(-0.125)),
            ("tiny", Json::Num(1.234e-9)),
            ("nan_as_null", Json::Num(f64::NAN)),
            ("text", Json::str("quotes \" and \\ and unicode é")),
            ("flag", Json::Bool(false)),
            (
                "nested",
                Json::Arr(vec![Json::obj(vec![("k", Json::Num(7.5))])]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = value.render();
        let reparsed = Json::parse(&text).expect("parse");
        // NaN rendered as null, so compare via a second render.
        assert_eq!(reparsed.render(), text);
        // Pretty form parses back to the same tree as the compact form.
        assert_eq!(Json::parse(&value.render_pretty()).unwrap(), reparsed);
    }

    #[test]
    fn accessors_navigate_objects() {
        let value = Json::parse(r#"{"n": 3, "s": "hi", "a": [1, 2], "x": null}"#).unwrap();
        assert_eq!(value.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(value.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(
            value.get("a").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert!(value.get("x").and_then(Json::as_f64).unwrap().is_nan());
        assert!(value.get("missing").is_none());
        assert_eq!(value.get("s").and_then(Json::as_u64), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash \u{1}control";
        let rendered = Json::Str(original.to_owned()).render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
        // Standard escapes the writer never emits still parse.
        assert_eq!(
            Json::parse(r#""A\b\f\/""#).unwrap().as_str(),
            Some("A\u{8}\u{c}/")
        );
    }
}
