//! Symmetric eigenvalue decomposition via the cyclic Jacobi method.
//!
//! The ellipsoid knowledge set of the pricing mechanism is parameterised by a
//! symmetric positive-definite shape matrix `A`; its eigenvalues give the
//! squared semi-axis lengths and its determinant (product of eigenvalues)
//! gives the volume up to the unit-ball constant.  Lemmas 4–6 of the paper
//! reason about the smallest eigenvalue, so we need a reliable symmetric
//! eigensolver — the cyclic Jacobi method is simple, numerically robust, and
//! easily fast enough for the paper's dimensions (n ≤ 1024, and the
//! eigensolver is only used in diagnostics/tests, never in the per-round hot
//! path).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Result of a symmetric eigendecomposition `A = V diag(λ) V^T`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted in descending order.
    pub eigenvalues: Vector,
    /// Matrix whose `j`-th column is the eigenvector for `eigenvalues[j]`.
    pub eigenvectors: Matrix,
}

impl EigenDecomposition {
    /// Largest eigenvalue.
    #[must_use]
    pub fn largest(&self) -> f64 {
        self.eigenvalues[0]
    }

    /// Smallest eigenvalue.
    #[must_use]
    pub fn smallest(&self) -> f64 {
        self.eigenvalues[self.eigenvalues.len() - 1]
    }

    /// Condition number `λ_max / λ_min` (infinite when `λ_min == 0`).
    #[must_use]
    pub fn condition_number(&self) -> f64 {
        let smallest = self.smallest();
        if smallest == 0.0 {
            f64::INFINITY
        } else {
            self.largest() / smallest
        }
    }

    /// Product of the eigenvalues, i.e. the determinant of the original matrix.
    #[must_use]
    pub fn determinant(&self) -> f64 {
        self.eigenvalues.iter().product()
    }

    /// Reconstructs the original matrix `V diag(λ) V^T` (used in tests).
    #[must_use]
    pub fn reconstruct(&self) -> Matrix {
        let n = self.eigenvalues.len();
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let col = self.eigenvectors.column(k);
            let lambda = self.eigenvalues[k];
            out.rank_one_update(lambda, &col);
        }
        out
    }
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// # Errors
/// Returns [`LinalgError::NotSquare`] / [`LinalgError::NotSymmetric`] for bad
/// inputs and [`LinalgError::NoConvergence`] if the off-diagonal mass does not
/// vanish after `MAX_SWEEPS` sweeps (which does not happen for well-scaled
/// symmetric matrices).
pub fn jacobi_eigen(matrix: &Matrix, symmetry_tol: f64) -> Result<EigenDecomposition> {
    if !matrix.is_square() {
        return Err(LinalgError::NotSquare {
            rows: matrix.rows(),
            cols: matrix.cols(),
        });
    }
    let asym = matrix.max_asymmetry();
    if asym > symmetry_tol {
        return Err(LinalgError::NotSymmetric {
            max_asymmetry: asym,
        });
    }
    let n = matrix.rows();
    if n == 0 {
        return Err(LinalgError::Empty {
            operation: "jacobi_eigen",
        });
    }

    let mut a = matrix.clone();
    a.symmetrize();
    let mut v = Matrix::identity(n);

    // Convergence threshold proportional to the matrix scale.
    let scale = a.frobenius_norm().max(1e-300);
    let tol = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&a);
        if off <= tol {
            return Ok(collect(a, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() <= tol / (n * n) as f64 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                // Classic Jacobi rotation angle.
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to A on both sides: A <- J^T A J.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                // Accumulate eigenvectors: V <- V J.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let off = off_diagonal_norm(&a);
    if off <= tol * 100.0 {
        // Close enough: accept the slightly less converged answer instead of
        // failing the whole simulation.
        return Ok(collect(a, v));
    }
    Err(LinalgError::NoConvergence {
        algorithm: "jacobi_eigen",
        iterations: MAX_SWEEPS,
    })
}

/// Frobenius norm of the strictly-off-diagonal part of a square matrix.
fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += a.get(i, j) * a.get(i, j);
            }
        }
    }
    sum.sqrt()
}

/// Extracts eigenvalues from the (nearly) diagonalised matrix and sorts the
/// pairs in descending eigenvalue order.
fn collect(a: Matrix, v: Matrix) -> EigenDecomposition {
    let n = a.rows();
    let mut pairs: Vec<(f64, Vector)> = (0..n).map(|i| (a.get(i, i), v.column(i))).collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues = Vector::from_fn(n, |i| pairs[i].0);
    let mut eigenvectors = Matrix::zeros(n, n);
    for (j, (_, vec)) in pairs.iter().enumerate() {
        for i in 0..n {
            eigenvectors.set(i, j, vec[i]);
        }
    }
    EigenDecomposition {
        eigenvalues,
        eigenvectors,
    }
}

/// Estimates the largest eigenvalue of a symmetric matrix with power
/// iteration.
///
/// This is the cheap estimator used in runtime diagnostics where a full
/// decomposition would be wasteful.
///
/// # Errors
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::Empty`] for the 0×0 matrix.
pub fn power_iteration_largest(matrix: &Matrix, iterations: usize) -> Result<f64> {
    if !matrix.is_square() {
        return Err(LinalgError::NotSquare {
            rows: matrix.rows(),
            cols: matrix.cols(),
        });
    }
    let n = matrix.rows();
    if n == 0 {
        return Err(LinalgError::Empty {
            operation: "power_iteration_largest",
        });
    }
    // Deterministic start vector with all components present.
    let mut x = Vector::from_fn(n, |i| 1.0 + (i as f64 + 1.0) * 1e-3);
    x = x.normalized();
    let mut lambda = 0.0;
    for _ in 0..iterations.max(1) {
        let y = matrix.matvec(&x);
        let norm = y.norm();
        if norm == 0.0 {
            return Ok(0.0);
        }
        x = y.scaled(1.0 / norm);
        lambda = matrix.quadratic_form(&x);
    }
    Ok(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = Matrix::diagonal(&[3.0, 1.0, 2.0]);
        let e = jacobi_eigen(&m, 1e-12).unwrap();
        assert_eq!(e.eigenvalues.as_slice(), &[3.0, 2.0, 1.0]);
        assert!(approx_eq(e.determinant(), 6.0, 1e-9));
        assert!(approx_eq(e.condition_number(), 3.0, 1e-9));
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&m, 1e-12).unwrap();
        assert!(approx_eq(e.largest(), 3.0, 1e-9));
        assert!(approx_eq(e.smallest(), 1.0, 1e-9));
    }

    #[test]
    fn reconstruction_matches_original() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let e = jacobi_eigen(&m, 1e-12).unwrap();
        let r = e.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    approx_eq(r.get(i, j), m.get(i, j), 1e-8),
                    "mismatch at ({i},{j}): {} vs {}",
                    r.get(i, j),
                    m.get(i, j)
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.5],
            vec![1.0, 0.5, 3.0],
        ]);
        let e = jacobi_eigen(&m, 1e-12).unwrap();
        let vt_v = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(vt_v.get(i, j), expected, 1e-8));
            }
        }
    }

    #[test]
    fn rejects_non_square_and_asymmetric() {
        assert!(matches!(
            jacobi_eigen(&Matrix::zeros(2, 3), 1e-12),
            Err(LinalgError::NotSquare { .. })
        ));
        let asym = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        assert!(matches!(
            jacobi_eigen(&asym, 1e-12),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let m = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let e = jacobi_eigen(&m, 1e-12).unwrap();
        assert!(approx_eq(e.eigenvalues.sum(), m.trace(), 1e-9));
    }

    #[test]
    fn power_iteration_matches_jacobi() {
        let m = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 0.0],
            vec![1.0, 0.0, 4.0],
        ]);
        let e = jacobi_eigen(&m, 1e-12).unwrap();
        let approx = power_iteration_largest(&m, 200).unwrap();
        assert!(approx_eq(approx, e.largest(), 1e-6));
    }

    #[test]
    fn power_iteration_zero_matrix() {
        let m = Matrix::zeros(3, 3);
        assert!(approx_eq(
            power_iteration_largest(&m, 10).unwrap(),
            0.0,
            1e-12
        ));
    }

    #[test]
    fn identity_eigenvalues_all_one() {
        let e = jacobi_eigen(&Matrix::identity(5), 1e-12).unwrap();
        for i in 0..5 {
            assert!(approx_eq(e.eigenvalues[i], 1.0, 1e-12));
        }
    }

    #[test]
    fn larger_random_like_matrix_is_handled() {
        // Deterministic pseudo-random symmetric PD matrix: B^T B + I.
        let n = 12;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5);
        let mut m = b.transpose().matmul(&b).unwrap();
        for i in 0..n {
            m.add_to(i, i, 1.0);
        }
        let e = jacobi_eigen(&m, 1e-9).unwrap();
        assert!(e.smallest() >= 0.99, "PD matrix must keep eigenvalues >= 1");
        assert!(approx_eq(e.eigenvalues.sum(), m.trace(), 1e-6));
    }
}
