//! Error types for the linear-algebra substrate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors that can arise from linear-algebra operations.
///
/// The pricing code treats most of these as programming errors (dimension
/// mismatches) or as signals that a knowledge set has degenerated numerically
/// (loss of positive definiteness), so the variants carry enough context to
/// produce actionable messages.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        operation: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
    },
    /// A matrix expected to be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A matrix expected to be symmetric was not (beyond tolerance).
    NotSymmetric {
        /// Maximum absolute asymmetry `|A[i][j] - A[j][i]|` observed.
        max_asymmetry: f64,
    },
    /// A matrix expected to be positive definite was not.
    NotPositiveDefinite {
        /// Index of the pivot at which the Cholesky factorisation failed.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Human-readable name of the algorithm.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The linear program was infeasible.
    Infeasible,
    /// The linear program was unbounded in the optimisation direction.
    Unbounded,
    /// A vector or matrix that must be non-empty was empty.
    Empty {
        /// Human-readable name of the operation that failed.
        operation: &'static str,
    },
    /// A scalar argument was outside its valid domain.
    InvalidArgument {
        /// Description of the violated requirement.
        message: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                operation,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {operation}: expected {expected}, got {actual}"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            LinalgError::NotSymmetric { max_asymmetry } => {
                write!(
                    f,
                    "matrix is not symmetric (max asymmetry {max_asymmetry:e})"
                )
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} has value {value:e})"
            ),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations"
            ),
            LinalgError::Infeasible => write!(f, "linear program is infeasible"),
            LinalgError::Unbounded => write!(f, "linear program is unbounded"),
            LinalgError::Empty { operation } => {
                write!(f, "{operation} requires a non-empty operand")
            }
            LinalgError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = LinalgError::DimensionMismatch {
            operation: "dot",
            expected: 3,
            actual: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains("dot"));
        assert!(msg.contains('3'));
        assert!(msg.contains('4'));
    }

    #[test]
    fn display_not_positive_definite() {
        let err = LinalgError::NotPositiveDefinite {
            pivot: 2,
            value: -1.5,
        };
        assert!(err.to_string().contains("positive definite"));
    }

    #[test]
    fn display_infeasible_and_unbounded() {
        assert!(LinalgError::Infeasible.to_string().contains("infeasible"));
        assert!(LinalgError::Unbounded.to_string().contains("unbounded"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error(_e: &dyn std::error::Error) {}
        takes_error(&LinalgError::Infeasible);
    }
}
