//! Fixed base-2^(1/4) log-bucket boundaries for deterministic histograms.
//!
//! The observability layer (`pdm-obs`) summarises latencies and batch sizes
//! as histograms over a **fixed** bucket grid so that merging two histograms
//! is an exact integer fold — associative, commutative, and therefore
//! byte-identical regardless of how many workers produced the pieces.  The
//! grid lives here, in the dependency-free root of the workspace, because
//! the bucket arithmetic is shared policy, not an implementation detail of
//! any one consumer.
//!
//! The grid places four buckets per octave: upper edges follow
//! `2^(k/4)` for `k = 0, 1, 2, …`, i.e. a ratio of `2^(1/4) ≈ 1.189`
//! between consecutive edges (≈ ±9% relative quantile error).  Edges are
//! computed in pure 32.32 fixed-point integer arithmetic —
//! `floor(c_{k mod 4} · 2^(k/4 rounded down octaves)) / 2^32` with the four
//! sub-octave constants pre-rounded — so the table is identical on every
//! platform and toolchain: no `exp2`/`log2` float library calls are involved
//! anywhere in the bucket math.
//!
//! Values are unsigned integers (nanoseconds, item counts).  Sub-unity
//! ratios cannot be told apart at the integer low end, so the first few
//! edges repeat (1, 1, 1, 1, 2, …); consumers that render the grid must
//! collapse duplicate edges (see `pdm-obs`).

/// Number of buckets: four per octave across the full `u64` range.
pub const BUCKETS: usize = 256;

/// 32.32 fixed-point images of `2^(k/4)` for `k = 0..4`, rounded to nearest.
const SUB_OCTAVE: [u128; 4] = [4_294_967_296, 5_107_605_667, 6_074_001_000, 7_223_245_206];

/// The inclusive upper edge of bucket `k`: `floor(2^(k/4))` in the
/// fixed-point scheme above.  The final bucket's edge is pinned to
/// `u64::MAX` — the grid's own top sits at `2^63.75`, and the last bucket
/// doubles as the `+Inf` bucket so every `u64` value is covered.
#[must_use]
pub const fn upper_edge(index: usize) -> u64 {
    if index >= BUCKETS - 1 {
        return u64::MAX;
    }
    let octave = index / 4;
    let scaled = SUB_OCTAVE[index % 4] << octave;
    let edge = scaled >> 32;
    if edge > u64::MAX as u128 {
        u64::MAX
    } else {
        edge as u64
    }
}

/// The full edge table, built at compile time.
#[must_use]
pub const fn upper_edges() -> [u64; BUCKETS] {
    let mut edges = [0u64; BUCKETS];
    let mut k = 0;
    while k < BUCKETS {
        edges[k] = upper_edge(k);
        k += 1;
    }
    edges
}

/// Compile-time edge table shared by every histogram instance.
pub const UPPER_EDGES: [u64; BUCKETS] = upper_edges();

/// The bucket holding `value`: the smallest `k` with
/// `value <= UPPER_EDGES[k]`.  Total — every `u64` lands in exactly one
/// bucket (the last edge saturates at `u64::MAX`).
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    UPPER_EDGES.partition_point(|&edge| edge < value)
}

/// The 1-based rank of quantile `q` among `total` ordered observations,
/// under the deterministic `ceil(q · total)` rule (clamped to `[1, total]`).
/// Shared so every consumer estimates quantiles identically.
#[must_use]
pub fn quantile_rank(total: u64, q: f64) -> u64 {
    let rank = (q * total as f64).ceil() as u64;
    rank.clamp(1, total.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_monotone_and_cover_u64() {
        for pair in UPPER_EDGES.windows(2) {
            assert!(pair[0] <= pair[1], "edges must be non-decreasing");
        }
        assert_eq!(UPPER_EDGES[0], 1);
        assert_eq!(
            UPPER_EDGES[BUCKETS - 1],
            u64::MAX,
            "the last bucket must catch everything"
        );
    }

    #[test]
    fn exact_powers_of_two_sit_on_their_octave_edge() {
        for e in 0..62 {
            assert_eq!(UPPER_EDGES[4 * e], 1u64 << e, "octave {e}");
        }
    }

    #[test]
    fn bucket_index_is_the_first_edge_at_or_above_the_value() {
        for &value in &[0u64, 1, 2, 3, 5, 1_000, 1 << 20, u64::MAX] {
            let k = bucket_index(value);
            assert!(value <= UPPER_EDGES[k]);
            if k > 0 {
                assert!(UPPER_EDGES[k - 1] < value);
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 4);
    }

    #[test]
    fn consecutive_edges_keep_the_quarter_octave_ratio() {
        // Above the integer-resolution floor the ratio between distinct
        // consecutive edges stays within a hair of 2^(1/4).
        let target = 2f64.powf(0.25);
        for k in 40..BUCKETS - 4 {
            let (lo, hi) = (UPPER_EDGES[k] as f64, UPPER_EDGES[k + 1] as f64);
            if hi == lo || hi == u64::MAX as f64 {
                continue;
            }
            let ratio = hi / lo;
            assert!(
                (ratio - target).abs() < 1e-3,
                "edge ratio at {k}: {ratio} vs {target}"
            );
        }
    }

    #[test]
    fn quantile_rank_is_clamped_and_deterministic() {
        assert_eq!(quantile_rank(100, 0.50), 50);
        assert_eq!(quantile_rank(100, 0.99), 99);
        assert_eq!(quantile_rank(100, 0.0), 1);
        assert_eq!(quantile_rank(100, 1.0), 100);
        assert_eq!(quantile_rank(1, 0.5), 1);
        assert_eq!(quantile_rank(0, 0.5), 1, "empty totals clamp to rank 1");
    }
}
