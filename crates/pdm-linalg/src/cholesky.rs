//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! Used for (a) cheap positive-definiteness checks on the ellipsoid shape
//! matrix, (b) log-determinant computation (the ellipsoid volume evolves as
//! `exp` of the log-determinant, which is far better conditioned than the raw
//! product of eigenvalues), and (c) solving the normal equations of the
//! ordinary-least-squares learner.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    lower: Matrix,
}

impl Cholesky {
    /// Factorises a symmetric positive-definite matrix.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::NotSymmetric`] for
    /// malformed inputs, and [`LinalgError::NotPositiveDefinite`] when a pivot
    /// becomes non-positive.
    pub fn factor(matrix: &Matrix, symmetry_tol: f64) -> Result<Self> {
        let mut lower = Matrix::default();
        Self::factor_into(matrix, symmetry_tol, &mut lower)?;
        Ok(Self { lower })
    }

    /// In-place Cholesky factorisation into a caller-owned buffer.
    ///
    /// On success `lower` holds the lower-triangular factor `L` with
    /// `A = L L^T` — bit-for-bit the factor [`Cholesky::factor`] produces
    /// (the elimination order is identical) — without allocating beyond the
    /// buffer's capacity.  `lower` is resized and zeroed first, so any
    /// previous contents are irrelevant.  On error the buffer contents are
    /// unspecified.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::NotSymmetric`] for
    /// malformed inputs, and [`LinalgError::NotPositiveDefinite`] when a pivot
    /// becomes non-positive.
    pub fn factor_into(matrix: &Matrix, symmetry_tol: f64, lower: &mut Matrix) -> Result<()> {
        if !matrix.is_square() {
            return Err(LinalgError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        let asym = matrix.max_asymmetry();
        if asym > symmetry_tol {
            return Err(LinalgError::NotSymmetric {
                max_asymmetry: asym,
            });
        }
        let n = matrix.rows();
        lower.resize_zeroed(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = matrix.get(i, j);
                for k in 0..j {
                    sum -= lower.get(i, k) * lower.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    lower.set(i, j, sum.sqrt());
                } else {
                    lower.set(i, j, sum / lower.get(j, j));
                }
            }
        }
        Ok(())
    }

    /// The lower-triangular factor `L`.
    #[must_use]
    pub fn lower(&self) -> &Matrix {
        &self.lower
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Determinant of the original matrix: `prod(L[i][i])^2`.
    #[must_use]
    pub fn determinant(&self) -> f64 {
        let mut prod = 1.0;
        for i in 0..self.dim() {
            prod *= self.lower.get(i, i);
        }
        prod * prod
    }

    /// Natural logarithm of the determinant, computed stably as
    /// `2 * sum(log L[i][i])`.
    #[must_use]
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim())
            .map(|i| self.lower.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }

    /// Solves `A x = b` using the factorisation (forward then backward
    /// substitution).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != n`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "Cholesky::solve",
                expected: n,
                actual: b.len(),
            });
        }
        // Forward substitution: L y = b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.lower.get(i, j) * y[j];
            }
            y[i] = acc / self.lower.get(i, i);
        }
        // Backward substitution: L^T x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lower.get(j, i) * x[j];
            }
            x[i] = acc / self.lower.get(i, i);
        }
        Ok(x)
    }

    /// Inverse of the original matrix, column by column.
    ///
    /// # Errors
    /// Propagates solver errors (none expected for a valid factorisation).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let e = Vector::basis(n, j);
            let col = self.solve(&e)?;
            for i in 0..n {
                inv.set(i, j, col[i]);
            }
        }
        Ok(inv)
    }
}

/// Returns `true` when `matrix` is symmetric positive definite (within the
/// given symmetry tolerance).
#[must_use]
pub fn is_positive_definite(matrix: &Matrix, symmetry_tol: f64) -> bool {
    Cholesky::factor(matrix, symmetry_tol).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 3.0, 0.4],
            vec![0.6, 0.4, 2.0],
        ])
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_example();
        let chol = Cholesky::factor(&a, 1e-12).unwrap();
        let l = chol.lower();
        let recon = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(recon.get(i, j), a.get(i, j), 1e-10));
            }
        }
    }

    #[test]
    fn determinant_matches_solve_based_check() {
        let a = spd_example();
        let chol = Cholesky::factor(&a, 1e-12).unwrap();
        assert!(chol.determinant() > 0.0);
        assert!(approx_eq(
            chol.log_determinant(),
            chol.determinant().ln(),
            1e-10
        ));
    }

    #[test]
    fn solve_matches_direct_solver() {
        let a = spd_example();
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let chol = Cholesky::factor(&a, 1e-12).unwrap();
        let x_chol = chol.solve(&b).unwrap();
        let x_direct = a.solve(&b).unwrap();
        for i in 0..3 {
            assert!(approx_eq(x_chol[i], x_direct[i], 1e-9));
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd_example();
        let inv = Cholesky::factor(&a, 1e-12).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod.get(i, j), expected, 1e-9));
            }
        }
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a, 1e-12),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(!is_positive_definite(&a, 1e-12));
        assert!(is_positive_definite(&Matrix::identity(4), 1e-12));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3), 1e-12),
            Err(LinalgError::NotSquare { .. })
        ));
        let asym = Matrix::from_rows(&[vec![1.0, 0.5], vec![0.0, 1.0]]);
        assert!(matches!(
            Cholesky::factor(&asym, 1e-12),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn factor_into_matches_factor_bitwise_and_reuses_buffer() {
        let a = spd_example();
        let reference = Cholesky::factor(&a, 1e-12).unwrap();
        let mut lower = Matrix::from_fn(5, 5, |_, _| 9.9); // stale contents
        Cholesky::factor_into(&a, 1e-12, &mut lower).unwrap();
        assert_eq!(lower.as_slice(), reference.lower().as_slice());
        // Error paths still reject the same inputs as the allocating API.
        assert!(Cholesky::factor_into(&Matrix::zeros(2, 3), 1e-12, &mut lower).is_err());
        let indef = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            Cholesky::factor_into(&indef, 1e-12, &mut lower),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let chol = Cholesky::factor(&Matrix::identity(3), 1e-12).unwrap();
        assert!(chol.solve(&Vector::zeros(2)).is_err());
    }
}
