//! Dense, row-major `f64` matrices.
//!
//! [`Matrix`] provides the operations needed by the ellipsoid pricing
//! mechanism (matrix–vector products, symmetric rank-one updates, quadratic
//! forms) and by the learners (Gram matrices, transposes, solves via
//! [`crate::Cholesky`]).

use crate::error::{LinalgError, Result};
use crate::vector::Vector;
use serde::{Deserialize, Serialize};
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense matrix stored in row-major order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Builds a matrix from a nested slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] when `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument {
                message: format!(
                    "row-major data has {} entries, expected {}",
                    data.len(),
                    rows * cols
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Outer product `a * b^T`.
    #[must_use]
    pub fn outer(a: &Vector, b: &Vector) -> Self {
        let mut m = Self::zeros(a.len(), b.len());
        for i in 0..a.len() {
            for j in 0..b.len() {
                m.set(i, j, a[i] * b[j]);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element accessor.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.cols + j] = value;
    }

    /// Adds `value` to element `(i, j)`.
    pub fn add_to(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.cols + j] += value;
    }

    /// Immutable view of the `i`-th row.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies the `j`-th column into a new [`Vector`].
    #[must_use]
    pub fn column(&self, j: usize) -> Vector {
        Vector::from_fn(self.rows, |i| self.get(i, j))
    }

    /// Copies the main diagonal into a new [`Vector`].
    #[must_use]
    pub fn diag(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_fn(n, |i| self.get(i, i))
    }

    /// Raw row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Overwrites `self` with the contents of `src`, reusing the existing
    /// allocation whenever its capacity suffices.
    ///
    /// The matrix counterpart of [`Vector::copy_from`]: the ellipsoid cut
    /// update copies the shape matrix into a long-lived scratch buffer each
    /// round instead of cloning a fresh `n × n` allocation.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Resizes the matrix to `rows x cols` and fills it with zeros, reusing
    /// the existing allocation whenever its capacity suffices.
    ///
    /// Used by in-place factorisations ([`crate::Cholesky::factor_into`])
    /// that need a clean buffer without a fresh allocation each call.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Trace (sum of diagonal entries).
    #[must_use]
    pub fn trace(&self) -> f64 {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).sum()
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns a transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Returns a copy scaled by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Scales the matrix in place by `factor`.
    pub fn scale_mut(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &Vector) -> Vector {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: vector length {} does not match {} columns",
            x.len(),
            self.cols
        );
        Vector::from_fn(self.rows, |i| {
            let row = self.row(i);
            row.iter().zip(x.iter()).map(|(a, b)| a * b).sum()
        })
    }

    /// Matrix–vector product `A x` into a caller-owned scratch buffer.
    ///
    /// Produces exactly the values of [`Matrix::matvec`] — the per-row
    /// multiply/accumulate order is identical, so results are bit-for-bit
    /// equal — without allocating.  `out` is resized to `self.rows()`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.cols()`.
    pub fn mul_vec_into(&self, x: &Vector, out: &mut Vector) {
        assert_eq!(
            x.len(),
            self.cols,
            "mul_vec_into: vector length {} does not match {} columns",
            x.len(),
            self.cols
        );
        out.resize(self.rows);
        let out = out.as_mut_slice();
        for (i, slot) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *slot = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
    }

    /// Transposed matrix–vector product `A^T x`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.rows()`.
    #[must_use]
    pub fn matvec_transposed(&self, x: &Vector) -> Vector {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_transposed: vector length {} does not match {} rows",
            x.len(),
            self.rows
        );
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for j in 0..self.cols {
                out[j] += xi * row[j];
            }
        }
        out
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "Matrix::matmul",
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Quadratic form `x^T A x`.
    ///
    /// # Panics
    /// Panics when the matrix is not square or `x.len() != n`.
    #[must_use]
    pub fn quadratic_form(&self, x: &Vector) -> f64 {
        assert!(self.is_square(), "quadratic_form requires a square matrix");
        // pdm-lint: allow(no-unwrap-in-lib) reason="matvec already rejected any dimension mismatch for the same x on this line"
        self.matvec(x).dot(x).expect("dimensions checked above")
    }

    /// Quadratic form `x^T A x` computed through a caller-owned scratch
    /// buffer (which ends up holding `A x`).
    ///
    /// Bit-for-bit equal to [`Matrix::quadratic_form`] — the product and
    /// accumulation order is identical — without allocating.
    ///
    /// # Panics
    /// Panics when the matrix is not square or `x.len() != n`.
    pub fn quadratic_form_with(&self, x: &Vector, scratch: &mut Vector) -> f64 {
        assert!(
            self.is_square(),
            "quadratic_form_with requires a square matrix"
        );
        self.mul_vec_into(x, scratch);
        scratch.iter().zip(x.iter()).map(|(m, d)| m * d).sum()
    }

    /// In-place symmetric rank-one update `A += alpha * v v^T`.
    ///
    /// # Panics
    /// Panics when the matrix is not square or `v.len() != n`.
    pub fn rank_one_update(&mut self, alpha: f64, v: &Vector) {
        assert!(self.is_square(), "rank_one_update requires a square matrix");
        assert_eq!(v.len(), self.rows, "rank_one_update: dimension mismatch");
        for i in 0..self.rows {
            let vi = v[i];
            for j in 0..self.cols {
                self.add_to(i, j, alpha * vi * v[j]);
            }
        }
    }

    /// Fused `syr`-style kernel of the ellipsoid cut update:
    /// `out = symmetrize((A + alpha · v vᵀ) · beta)`, written into a
    /// caller-owned scratch matrix without allocating.
    ///
    /// Bit-for-bit equal to the three-step sequence
    /// `out = A.clone(); out.rank_one_update(alpha, v); out.scale_mut(beta);
    /// out.symmetrize()`: each element sees exactly the rounding sequence
    /// `(a + (alpha·vᵢ)·vⱼ) · beta`, then the same upper/lower averaging —
    /// the per-operation grouping the three-step path performs.
    ///
    /// # Panics
    /// Panics when the matrix is not square or `v.len() != n`.
    pub fn rank_one_scaled_symmetrized_into(
        &self,
        alpha: f64,
        v: &Vector,
        beta: f64,
        out: &mut Matrix,
    ) {
        assert!(
            self.is_square(),
            "rank_one_scaled_symmetrized_into requires a square matrix"
        );
        assert_eq!(
            v.len(),
            self.rows,
            "rank_one_scaled_symmetrized_into: dimension mismatch"
        );
        let n = self.rows;
        out.rows = n;
        out.cols = n;
        out.data.clear();
        out.data.reserve(n * n);
        let v = v.as_slice();
        for i in 0..n {
            let avi = alpha * v[i];
            let row = self.row(i);
            out.data.extend(
                row.iter()
                    .zip(v.iter())
                    .map(|(&a, &vj)| (a + avi * vj) * beta),
            );
        }
        out.symmetrize();
    }

    /// Maximum absolute asymmetry `max_ij |A[i][j] - A[j][i]|` (zero for
    /// non-square matrices is meaningless, so this panics in that case).
    ///
    /// # Panics
    /// Panics when the matrix is not square.
    #[must_use]
    pub fn max_asymmetry(&self) -> f64 {
        assert!(self.is_square(), "max_asymmetry requires a square matrix");
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }

    /// Returns `true` when the matrix is symmetric within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.max_asymmetry() <= tol
    }

    /// Forces exact symmetry by averaging `A` and `A^T` in place.
    ///
    /// The ellipsoid shape matrix is updated tens of thousands of times per
    /// simulation; re-symmetrising after each rank-one update keeps floating
    /// point drift from accumulating into asymmetry.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self.get(i, j) + self.get(j, i));
                self.set(i, j, avg);
                self.set(j, i, avg);
            }
        }
    }

    /// Returns `true` when every entry is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// This is a general-purpose solver used by the learners and the simplex
    /// tableau construction; the pricing hot path never calls it.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square systems and
    /// [`LinalgError::InvalidArgument`] for singular systems or mismatched
    /// right-hand-side lengths.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "Matrix::solve",
                expected: self.rows,
                actual: b.len(),
            });
        }
        let n = self.rows;
        // Build the augmented system [A | b] and run Gauss-Jordan with
        // partial pivoting.
        let mut a = self.clone();
        let mut rhs = b.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Pivot selection.
            let (pivot_row, pivot_val) =
                (col..n)
                    .map(|r| (r, a.get(r, col).abs()))
                    .fold(
                        (col, 0.0),
                        |acc, item| if item.1 > acc.1 { item } else { acc },
                    );
            if pivot_val < 1e-14 {
                return Err(LinalgError::InvalidArgument {
                    message: format!("singular matrix at column {col}"),
                });
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = a.get(col, j);
                    a.set(col, j, a.get(pivot_row, j));
                    a.set(pivot_row, j, tmp);
                }
                let tmp = rhs[col];
                rhs[col] = rhs[pivot_row];
                rhs[pivot_row] = tmp;
                perm.swap(col, pivot_row);
            }
            // Eliminate below.
            let pivot = a.get(col, col);
            for r in (col + 1)..n {
                let factor = a.get(r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    let updated = a.get(r, j) - factor * a.get(col, j);
                    a.set(r, j, updated);
                }
                rhs[r] -= factor * rhs[col];
            }
        }
        // Back substitution.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = rhs[i];
            for j in (i + 1)..n {
                acc -= a.get(i, j) * x[j];
            }
            x[i] = acc / a.get(i, i);
        }
        Ok(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &Self::Output {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Self::Output {
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "Matrix add: row mismatch");
        assert_eq!(self.cols, rhs.cols, "Matrix add: column mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "Matrix sub: row mismatch");
        assert_eq!(self.cols, rhs.cols, "Matrix sub: column mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn example() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
    }

    #[test]
    fn constructors_and_accessors() {
        let m = example();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0).as_slice(), &[1.0, 3.0]);
        assert_eq!(m.diag().as_slice(), &[1.0, 4.0]);

        let id = Matrix::identity(3);
        assert_eq!(id.trace(), 3.0);
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(2, 2), 3.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn from_row_major_checks_length() {
        assert!(Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m, example());
    }

    #[test]
    fn matvec_and_transpose() {
        let m = example();
        let x = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(m.matvec(&x).as_slice(), &[3.0, 7.0]);
        assert_eq!(m.transpose().matvec(&x).as_slice(), &[4.0, 6.0]);
        assert_eq!(m.matvec_transposed(&x).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = example();
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn quadratic_form_matches_direct_evaluation() {
        let a = Matrix::from_rows(&[vec![2.0, 0.5], vec![0.5, 1.0]]);
        let x = Vector::from_slice(&[1.0, 2.0]);
        // x^T A x = 2 + 0.5*2 + 0.5*2 + 4 = 8
        assert!(approx_eq(a.quadratic_form(&x), 8.0, 1e-12));
    }

    #[test]
    fn rank_one_update_and_outer() {
        let v = Vector::from_slice(&[1.0, 2.0]);
        let mut a = Matrix::identity(2);
        a.rank_one_update(2.0, &v);
        let expected = &Matrix::identity(2) + &Matrix::outer(&v, &v).scaled(2.0);
        assert_eq!(a, expected);
    }

    #[test]
    fn symmetry_helpers() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0 + 1e-8, 1.0]]);
        assert!(!m.is_symmetric(1e-12));
        assert!(m.is_symmetric(1e-6));
        m.symmetrize();
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let x_true = Vector::from_slice(&[1.0, -2.0, 3.0]);
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for i in 0..3 {
            assert!(approx_eq(x[i], x_true[i], 1e-9));
        }
    }

    #[test]
    fn solve_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&Vector::from_slice(&[1.0, 2.0])).is_err());
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&Vector::zeros(2)),
            Err(LinalgError::NotSquare { .. })
        ));
        let b = Matrix::identity(2);
        assert!(matches!(
            b.solve(&Vector::zeros(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn arithmetic_operators() {
        let a = example();
        let b = Matrix::identity(2);
        assert_eq!((&a + &b).get(0, 0), 2.0);
        assert_eq!((&a - &b).get(1, 1), 3.0);
        assert_eq!((&a * 2.0).get(1, 0), 6.0);
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let m = example();
        assert!(approx_eq(m.frobenius_norm(), 30.0_f64.sqrt(), 1e-12));
    }

    #[test]
    fn mul_vec_into_matches_matvec_bitwise() {
        let m = Matrix::from_rows(&[
            vec![0.1, -2.3, 7.7],
            vec![4.25, 0.0, -1.5],
            vec![9.01, 3.3, 0.125],
        ]);
        let x = Vector::from_slice(&[1.7, -0.3, 2.9]);
        let expected = m.matvec(&x);
        let mut out = Vector::zeros(1); // wrong size on purpose: must resize
        m.mul_vec_into(&x, &mut out);
        assert_eq!(out.as_slice(), expected.as_slice());
    }

    #[test]
    fn quadratic_form_with_matches_allocating_path_bitwise() {
        let a = Matrix::from_rows(&[vec![2.0, 0.51], vec![0.51, 1.25]]);
        let x = Vector::from_slice(&[1.3, -2.7]);
        let mut scratch = Vector::zeros(0);
        let fused = a.quadratic_form_with(&x, &mut scratch);
        assert_eq!(fused.to_bits(), a.quadratic_form(&x).to_bits());
        // The scratch ends up holding A x.
        assert_eq!(scratch.as_slice(), a.matvec(&x).as_slice());
    }

    #[test]
    fn rank_one_scaled_symmetrized_into_matches_three_step_sequence() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.7, -0.2],
            vec![0.7, 2.0, 0.05],
            vec![-0.2, 0.05, 1.5],
        ]);
        let v = Vector::from_slice(&[0.3, -1.9, 2.2]);
        let (alpha, beta) = (-0.637, 1.0625);
        let mut reference = a.clone();
        reference.rank_one_update(alpha, &v);
        reference.scale_mut(beta);
        reference.symmetrize();
        let mut fused = Matrix::default();
        a.rank_one_scaled_symmetrized_into(alpha, &v, beta, &mut fused);
        assert_eq!(fused, reference);
        // Reuse of a stale, differently-sized buffer must be harmless.
        let mut dirty = Matrix::zeros(7, 2);
        a.rank_one_scaled_symmetrized_into(alpha, &v, beta, &mut dirty);
        assert_eq!(dirty, reference);
    }

    #[test]
    fn copy_from_and_resize_zeroed_reuse_buffers() {
        let src = example();
        let mut dst = Matrix::zeros(5, 5);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.resize_zeroed(2, 3);
        assert_eq!(dst, Matrix::zeros(2, 3));
    }

    #[test]
    fn finite_detection() {
        assert!(example().is_finite());
        let mut m = example();
        m.set(0, 0, f64::NAN);
        assert!(!m.is_finite());
    }
}
