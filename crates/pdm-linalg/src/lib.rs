//! # pdm-linalg
//!
//! A small, dependency-free dense linear-algebra substrate used throughout the
//! `personal-data-pricing` workspace.
//!
//! The ellipsoid-based pricing mechanism of Niu et al. (ICDE 2020) only needs
//! a handful of operations — matrix–vector products, rank-one updates of a
//! symmetric positive-definite shape matrix, eigenvalues (for ellipsoid
//! volumes and axis widths), and Cholesky factorisation (for positive
//! definiteness checks and the ordinary-least-squares learner) — so this crate
//! implements exactly those, plus a dense simplex linear-programming solver
//! used in tests to cross-check ellipsoid bounds against the exact polytope
//! knowledge set.
//!
//! Because this crate is the dependency-free root of the workspace DAG it
//! also hosts the shared, non-numeric utilities: the deterministic [`json`]
//! tree (bench reports, service snapshots), the streaming statistics of
//! [`stats`], and the fixed log-bucket grid of [`logbucket`] that the
//! observability layer's mergeable histograms are built on.
//!
//! Everything is `f64`, row-major, and written for clarity first; the matrix
//! dimensions in the paper (n ≤ 1024) are small enough that straightforward
//! O(n³) algorithms are more than fast enough.
//!
//! ## Quick example
//!
//! ```
//! use pdm_linalg::{Matrix, Vector};
//!
//! let a = Matrix::identity(3).scaled(2.0);
//! let x = Vector::from_slice(&[1.0, 2.0, 3.0]);
//! let y = a.matvec(&x);
//! assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod json;
pub mod logbucket;
pub mod matrix;
pub mod sampling;
pub mod simplex;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use error::{LinalgError, Result};
pub use json::Json;
pub use matrix::Matrix;
pub use simplex::{LinearProgram, LpOutcome, LpSolution};
pub use stats::{
    mean, population_std, quantile_sorted, quantiles, sample_std, OnlineStats, SampleWindow,
};
pub use vector::Vector;

/// Numerical tolerance used across the crate for "is this effectively zero"
/// style checks (symmetry, positive-definiteness margins, convergence).
pub const EPS: f64 = 1e-10;

/// Returns `true` when two floating point values agree up to `tol` in either
/// absolute or relative terms.
///
/// This is the comparison helper used by the test suites across the workspace;
/// it is exposed publicly so downstream crates compare numbers consistently.
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.01, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.1e12, 1e-9));
    }

    #[test]
    fn approx_eq_handles_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-12));
        assert!(approx_eq(0.0, 1e-13, 1e-12));
        assert!(!approx_eq(0.0, 1e-3, 1e-12));
    }
}
