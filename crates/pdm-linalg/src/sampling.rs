//! Random sampling helpers shared across the workspace.
//!
//! The sanctioned dependency list contains `rand` but not `rand_distr`, so the
//! handful of distributions the paper's evaluation needs (Gaussian market-value
//! noise, Laplace noise for differential privacy, Rademacher noise for the
//! sub-Gaussian robustness checks) are implemented here once, on top of
//! `rand::Rng`, and reused by `pdm-pricing`, `pdm-market`, and `pdm-datasets`.

use crate::vector::Vector;
use rand::Rng;

/// Draws a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// # Panics
/// Panics when `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Draws a Laplace variate with location zero and the given scale, the noise
/// distribution of the standard ε-differential-privacy mechanism.
///
/// # Panics
/// Panics when `scale` is not positive.
pub fn laplace<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    assert!(scale > 0.0, "Laplace scale must be positive");
    // Inverse-CDF sampling: u uniform on (-1/2, 1/2).
    let u: f64 = rng.gen::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
}

/// Draws a uniform variate on `[lo, hi)`.
///
/// # Panics
/// Panics when `lo > hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "uniform bounds are inverted");
    lo + (hi - lo) * rng.gen::<f64>()
}

/// Draws a Rademacher variate (±1 with equal probability) scaled by
/// `magnitude`.
pub fn rademacher<R: Rng + ?Sized>(rng: &mut R, magnitude: f64) -> f64 {
    if rng.gen::<bool>() {
        magnitude
    } else {
        -magnitude
    }
}

/// Samples a vector with i.i.d. standard normal entries.
pub fn standard_normal_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vector {
    Vector::from_fn(dim, |_| standard_normal(rng))
}

/// Samples a vector with i.i.d. uniform entries on `[lo, hi)`.
pub fn uniform_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize, lo: f64, hi: f64) -> Vector {
    Vector::from_fn(dim, |_| uniform(rng, lo, hi))
}

/// Samples a point uniformly at random from the surface of the unit sphere.
///
/// # Panics
/// Panics when `dim == 0`.
pub fn unit_sphere<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vector {
    assert!(dim > 0, "unit_sphere requires a positive dimension");
    loop {
        let v = standard_normal_vector(rng, dim);
        let n = v.norm();
        if n > 1e-12 {
            return v.scaled(1.0 / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let mut stats = OnlineStats::new();
        for _ in 0..50_000 {
            stats.push(standard_normal(&mut r));
        }
        assert!(stats.mean().abs() < 0.02, "mean was {}", stats.mean());
        assert!(
            (stats.population_std() - 1.0).abs() < 0.02,
            "std was {}",
            stats.population_std()
        );
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut r = rng();
        let mut stats = OnlineStats::new();
        for _ in 0..50_000 {
            stats.push(normal(&mut r, 3.0, 0.5));
        }
        assert!((stats.mean() - 3.0).abs() < 0.02);
        assert!((stats.population_std() - 0.5).abs() < 0.02);
    }

    #[test]
    fn laplace_moments() {
        let mut r = rng();
        let scale = 2.0;
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(laplace(&mut r, scale));
        }
        // Mean 0, variance 2·scale².
        assert!(stats.mean().abs() < 0.05, "mean was {}", stats.mean());
        let var = stats.population_variance();
        assert!(
            (var - 2.0 * scale * scale).abs() < 0.4,
            "variance was {var}"
        );
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = uniform(&mut r, -2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn rademacher_is_symmetric() {
        let mut r = rng();
        let mut plus = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if rademacher(&mut r, 1.0) > 0.0 {
                plus += 1;
            }
        }
        let frac = plus as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction of +1 was {frac}");
    }

    #[test]
    fn unit_sphere_has_unit_norm() {
        let mut r = rng();
        for dim in [1, 2, 5, 20] {
            let v = unit_sphere(&mut r, dim);
            assert_eq!(v.len(), dim);
            assert!((v.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn vector_samplers_have_right_length() {
        let mut r = rng();
        assert_eq!(standard_normal_vector(&mut r, 7).len(), 7);
        let u = uniform_vector(&mut r, 9, -1.0, 1.0);
        assert_eq!(u.len(), 9);
        assert!(u.iter().all(|x| (-1.0..1.0).contains(x)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_panics() {
        let mut r = rng();
        let _ = normal(&mut r, 0.0, -1.0);
    }
}
