//! Property tests pinning the fused in-place kernels to their allocating
//! reference formulations, bit for bit.
//!
//! The hot path of the ellipsoid mechanism routes every per-round product
//! through three scratch-buffer kernels — [`Matrix::mul_vec_into`],
//! [`Matrix::rank_one_scaled_symmetrized_into`], and
//! [`Cholesky::factor_into`] — that each promise *exactly* the values of the
//! allocating call they replaced.  These suites drive both paths over seeded
//! random inputs and compare raw `f64` bit patterns: any reordering of the
//! multiply/accumulate sequence, however numerically benign, fails here.

use pdm_linalg::{sampling, Cholesky, Matrix, Vector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense random matrix with entries in `[-magnitude, magnitude]`.
fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, magnitude: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        sampling::uniform(rng, -magnitude, magnitude)
    })
}

/// A random symmetric positive-definite matrix, built as `G Gᵀ + εI` so the
/// Cholesky factorisation cannot fail.
fn random_spd(rng: &mut StdRng, dim: usize, magnitude: f64) -> Matrix {
    let g = random_matrix(rng, dim, dim, magnitude);
    let mut spd = Matrix::from_fn(dim, dim, |i, j| {
        (0..dim).map(|k| g.get(i, k) * g.get(j, k)).sum()
    });
    for i in 0..dim {
        spd.add_to(i, i, 1e-3);
    }
    spd.symmetrize();
    spd
}

fn assert_bits_eq(actual: &[f64], expected: &[f64], what: &str) {
    assert_eq!(actual.len(), expected.len(), "{what}: length mismatch");
    for (i, (a, e)) in actual.iter().zip(expected.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            e.to_bits(),
            "{what}: slot {i} diverged ({a} vs {e})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mul_vec_into_matches_matvec_bitwise(
        rows in 1usize..7,
        cols in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, rows, cols, 10.0);
        let x = sampling::uniform_vector(&mut rng, cols, -10.0, 10.0);
        let reference = a.matvec(&x);
        // Scratch arrives dirty and wrongly sized on purpose: the kernel
        // must resize and overwrite every slot.
        let mut scratch = Vector::from_slice(&[f64::NAN; 3]);
        a.mul_vec_into(&x, &mut scratch);
        prop_assert_eq!(scratch.len(), rows);
        assert_bits_eq(scratch.as_slice(), reference.as_slice(), "mul_vec_into");
    }

    #[test]
    fn quadratic_form_with_matches_quadratic_form_bitwise(
        dim in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, dim, dim, 5.0);
        let x = sampling::uniform_vector(&mut rng, dim, -5.0, 5.0);
        let reference = a.quadratic_form(&x);
        let mut scratch = Vector::zeros(0);
        let fused = a.quadratic_form_with(&x, &mut scratch);
        prop_assert_eq!(fused.to_bits(), reference.to_bits());
        // The scratch contract: it ends up holding `A x`.
        assert_bits_eq(scratch.as_slice(), a.matvec(&x).as_slice(), "scratch = A x");
    }

    #[test]
    fn rank_one_fused_kernel_matches_three_step_reference_bitwise(
        dim in 1usize..7,
        seed in 0u64..1_000,
        alpha in -3.0..3.0_f64,
        beta in 0.1..3.0_f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_spd(&mut rng, dim, 2.0);
        let v = sampling::uniform_vector(&mut rng, dim, -2.0, 2.0);

        // The allocating formulation the ellipsoid update used before the
        // fused kernel: clone, rank-one update, scale, symmetrize.
        let mut reference = a.clone();
        reference.rank_one_update(alpha, &v);
        reference.scale_mut(beta);
        reference.symmetrize();

        let mut out = Matrix::default();
        a.rank_one_scaled_symmetrized_into(alpha, &v, beta, &mut out);
        prop_assert_eq!(out.rows(), dim);
        assert_bits_eq(out.as_slice(), reference.as_slice(), "rank-one kernel");
    }

    #[test]
    fn rank_one_fused_kernel_is_exactly_symmetric_and_close_to_naive(
        dim in 2usize..7,
        seed in 0u64..1_000,
        alpha in -2.0..2.0_f64,
        beta in 0.1..2.0_f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_spd(&mut rng, dim, 2.0);
        let v = sampling::uniform_vector(&mut rng, dim, -2.0, 2.0);
        let mut out = Matrix::default();
        a.rank_one_scaled_symmetrized_into(alpha, &v, beta, &mut out);
        // Symmetrization is exact, not just within tolerance.
        prop_assert_eq!(out.max_asymmetry(), 0.0);
        // And the values agree with the mathematical definition
        // `β(A + α v vᵀ)` up to roundoff.
        for i in 0..dim {
            for j in 0..dim {
                let naive = beta * (a.get(i, j) + alpha * v[i] * v[j]);
                prop_assert!(
                    (out.get(i, j) - naive).abs() <= 1e-9 * (1.0 + naive.abs()),
                    "({}, {}): {} vs naive {}", i, j, out.get(i, j), naive
                );
            }
        }
    }

    #[test]
    fn factor_into_matches_allocating_cholesky_bitwise(
        dim in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spd = random_spd(&mut rng, dim, 3.0);
        let reference = Cholesky::factor(&spd, 1e-6).expect("SPD by construction");
        // The buffer arrives dirty from a *larger* factorisation: resize and
        // zeroing must erase every stale entry.
        let mut lower = Matrix::from_fn(dim + 2, dim + 2, |_, _| f64::NAN);
        Cholesky::factor_into(&spd, 1e-6, &mut lower).expect("SPD by construction");
        prop_assert_eq!(lower.rows(), dim);
        assert_bits_eq(lower.as_slice(), reference.lower().as_slice(), "cholesky factor");
    }

    #[test]
    fn factor_into_rejects_what_factor_rejects(
        dim in 2usize..6,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Indefinite by construction: a random symmetric matrix minus a
        // large multiple of the identity.
        let mut indefinite = random_matrix(&mut rng, dim, dim, 1.0);
        indefinite.symmetrize();
        for i in 0..dim {
            indefinite.add_to(i, i, -100.0);
        }
        let mut lower = Matrix::default();
        let by_value = Cholesky::factor(&indefinite, 1e-6).err();
        let in_place = Cholesky::factor_into(&indefinite, 1e-6, &mut lower).err();
        prop_assert!(by_value.is_some());
        prop_assert_eq!(format!("{:?}", by_value), format!("{:?}", in_place));
    }

    #[test]
    fn scratch_buffers_survive_dimension_changes(
        seed in 0u64..500,
    ) {
        // One scratch vector reused across shrinking and growing shapes —
        // exactly how a session-owned buffer lives across tenants of
        // different dimension.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scratch = Vector::zeros(0);
        for &dim in &[5usize, 2, 7, 1, 4] {
            let a = random_matrix(&mut rng, dim, dim, 4.0);
            let x = sampling::uniform_vector(&mut rng, dim, -4.0, 4.0);
            a.mul_vec_into(&x, &mut scratch);
            assert_bits_eq(scratch.as_slice(), a.matvec(&x).as_slice(), "resized scratch");
        }
    }
}

#[test]
fn degenerate_shapes_do_not_panic() {
    // Dimension 1: every kernel degenerates to scalar arithmetic.
    let a = Matrix::from_fn(1, 1, |_, _| 4.0);
    let x = Vector::from_slice(&[3.0]);
    let mut scratch = Vector::zeros(0);
    a.mul_vec_into(&x, &mut scratch);
    assert_eq!(scratch[0].to_bits(), 12.0_f64.to_bits());
    assert_eq!(
        a.quadratic_form_with(&x, &mut scratch).to_bits(),
        36.0_f64.to_bits()
    );
    let mut out = Matrix::default();
    a.rank_one_scaled_symmetrized_into(2.0, &x, 0.5, &mut out);
    assert_eq!(
        out.get(0, 0).to_bits(),
        (0.5_f64 * (4.0 + 2.0 * 9.0)).to_bits()
    );
    let mut lower = Matrix::default();
    Cholesky::factor_into(&a, 1e-6, &mut lower).expect("positive scalar");
    assert_eq!(lower.get(0, 0).to_bits(), 2.0_f64.to_bits());
}

#[test]
fn zero_vector_inputs_are_exact_no_ops() {
    let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64 + 1.0);
    let mut spd = a.clone();
    spd.symmetrize();
    for i in 0..3 {
        spd.add_to(i, i, 10.0);
    }
    let zero = Vector::zeros(3);
    let mut scratch = Vector::zeros(0);
    spd.mul_vec_into(&zero, &mut scratch);
    assert_eq!(scratch.as_slice(), &[0.0, 0.0, 0.0]);
    assert_eq!(spd.quadratic_form_with(&zero, &mut scratch), 0.0);
    // A rank-one update with the zero vector must reproduce `β·A` exactly.
    let mut out = Matrix::default();
    spd.rank_one_scaled_symmetrized_into(5.0, &zero, 1.0, &mut out);
    for (got, want) in out.as_slice().iter().zip(spd.as_slice()) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
}
